package btree

import (
	"testing"
	"testing/quick"

	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/sim"
	"pioqo/internal/table"
)

func newManager() *disk.Manager {
	return disk.NewManager(device.NewSSD(sim.NewEnv(1), device.DefaultSSDConfig()))
}

func buildMat(rows int64, leafCap int) (*Index, *table.Materialized) {
	m := newManager()
	t := table.NewMaterialized(m, "t", rows, 33, 42)
	return NewMaterialized(m, t, leafCap, 0), t
}

func buildSyn(rows int64, leafCap int) (*Index, *table.Synthetic) {
	m := newManager()
	t := table.NewSynthetic(m, "t", rows, 33, 42)
	return NewSynthetic(m, t, leafCap, 0), t
}

func TestMaterializedEntriesSortedAndComplete(t *testing.T) {
	x, tb := buildMat(2000, 100)
	var prev Entry
	seen := make(map[int64]bool, 2000)
	var buf []Entry
	for leaf := int64(0); leaf < x.Leaves(); leaf++ {
		buf = x.LeafEntries(leaf, buf)
		for _, e := range buf {
			if e.Key < prev.Key {
				t.Fatalf("key order violated: %d after %d", e.Key, prev.Key)
			}
			if tb.RowAt(e.Row).C2 != e.Key {
				t.Fatalf("entry %+v does not match table row", e)
			}
			if seen[e.Row] {
				t.Fatalf("row %d indexed twice", e.Row)
			}
			seen[e.Row] = true
			prev = e
		}
	}
	if int64(len(seen)) != tb.Rows() {
		t.Fatalf("indexed %d rows, want %d", len(seen), tb.Rows())
	}
}

func TestSyntheticEntriesAreDenseKeys(t *testing.T) {
	x, tb := buildSyn(1000, 128)
	var buf []Entry
	next := int64(0)
	for leaf := int64(0); leaf < x.Leaves(); leaf++ {
		buf = x.LeafEntries(leaf, buf)
		for _, e := range buf {
			if e.Key != next {
				t.Fatalf("entry key %d, want dense %d", e.Key, next)
			}
			if tb.RowAt(e.Row).C2 != e.Key {
				t.Fatalf("entry %+v does not match table row", e)
			}
			next++
		}
	}
	if next != 1000 {
		t.Fatalf("enumerated %d entries, want 1000", next)
	}
}

func TestSearchBoundsMaterialized(t *testing.T) {
	x, tb := buildMat(3000, 100)
	for _, key := range []int64{0, 1, 500, 1499, 2999} {
		wantGE := int64(0)
		wantGT := int64(0)
		for r := int64(0); r < tb.Rows(); r++ {
			c2 := tb.RowAt(r).C2
			if c2 < key {
				wantGE++
			}
			if c2 <= key {
				wantGT++
			}
		}
		if got := x.SearchGE(key); got != wantGE {
			t.Errorf("SearchGE(%d) = %d, want %d", key, got, wantGE)
		}
		if got := x.SearchGT(key); got != wantGT {
			t.Errorf("SearchGT(%d) = %d, want %d", key, got, wantGT)
		}
	}
}

func TestRangeCountMatchesBruteForce(t *testing.T) {
	x, tb := buildMat(2500, 100)
	cases := []struct{ lo, hi int64 }{{0, 0}, {0, 2499}, {100, 200}, {2400, 2499}, {500, 499}}
	for _, c := range cases {
		want := int64(0)
		for r := int64(0); r < tb.Rows(); r++ {
			if c2 := tb.RowAt(r).C2; c2 >= c.lo && c2 <= c.hi {
				want++
			}
		}
		if got := x.RangeCount(c.lo, c.hi); got != want {
			t.Errorf("RangeCount(%d, %d) = %d, want %d", c.lo, c.hi, got, want)
		}
	}
}

func TestRangeCountSynthetic(t *testing.T) {
	x, _ := buildSyn(1000, 100)
	if got := x.RangeCount(0, 99); got != 100 {
		t.Errorf("RangeCount(0,99) = %d, want 100 (keys dense)", got)
	}
	if got := x.RangeCount(990, 2000); got != 10 {
		t.Errorf("RangeCount(990,2000) = %d, want 10 (clamped)", got)
	}
}

func TestLeafGeometry(t *testing.T) {
	x, _ := buildSyn(1000, 128)
	if got, want := x.Leaves(), int64(8); got != want { // ceil(1000/128)
		t.Fatalf("Leaves = %d, want %d", got, want)
	}
	leaf, slot := x.LeafOf(x.SearchGE(300))
	if leaf != 2 || slot != 44 { // 300 = 2*128 + 44
		t.Errorf("LeafOf(300) = (%d, %d), want (2, 44)", leaf, slot)
	}
	last := x.LeafEntries(7, nil)
	if len(last) != 1000-7*128 {
		t.Errorf("last leaf has %d entries, want %d", len(last), 1000-7*128)
	}
}

func TestHeightAndInternalPages(t *testing.T) {
	cases := []struct {
		rows       int64
		leafCap    int
		fanout     int
		wantHeight int
		wantInner  int64
	}{
		{100, 250, 400, 1, 0},       // single leaf
		{1000, 10, 4, 5, 25 + 7 + 2 + 1}, // 100 leaves -> 25 -> 7 -> 2 -> 1
		{100000, 250, 400, 2, 1},    // 400 leaves -> root
	}
	for _, c := range cases {
		m := newManager()
		tb := table.NewSynthetic(m, "t", c.rows, 33, 1)
		x := NewSynthetic(m, tb, c.leafCap, c.fanout)
		if x.Height() != c.wantHeight {
			t.Errorf("rows=%d: height = %d, want %d", c.rows, x.Height(), c.wantHeight)
		}
		if x.InternalPages() != c.wantInner {
			t.Errorf("rows=%d: internal pages = %d, want %d", c.rows, x.InternalPages(), c.wantInner)
		}
		if got := x.File().Pages(); got != c.wantInner+x.Leaves() {
			t.Errorf("rows=%d: file has %d pages, want inner+leaves = %d",
				c.rows, got, c.wantInner+x.Leaves())
		}
		if got := len(x.DescentPath()); got != c.wantHeight-1 {
			t.Errorf("rows=%d: descent path %d pages, want %d", c.rows, got, c.wantHeight-1)
		}
	}
}

func TestLeafPageComesAfterInternals(t *testing.T) {
	m := newManager()
	tb := table.NewSynthetic(m, "t", 1000, 33, 1)
	x := NewSynthetic(m, tb, 10, 4) // several internal levels
	if got := x.LeafPage(0); got != x.InternalPages() {
		t.Errorf("LeafPage(0) = %d, want %d", got, x.InternalPages())
	}
	if got := x.LeafPage(x.Leaves() - 1); got != x.File().Pages()-1 {
		t.Errorf("last leaf at page %d, want %d", got, x.File().Pages()-1)
	}
}

func TestLeafPageOutOfRangePanics(t *testing.T) {
	x, _ := buildSyn(100, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range leaf")
		}
	}()
	x.LeafPage(x.Leaves())
}

// Property: for any range [lo, hi] on a synthetic index, walking the leaves
// between the search bounds enumerates exactly the rows whose key is in the
// range, in key order.
func TestPropertyRangeEnumeration(t *testing.T) {
	f := func(rowsRaw uint16, loRaw, hiRaw uint16) bool {
		rows := int64(rowsRaw%3000) + 10
		x, tb := buildSyn(rows, 64)
		lo, hi := int64(loRaw)%rows, int64(hiRaw)%rows
		if lo > hi {
			lo, hi = hi, lo
		}
		start, end := x.SearchGE(lo), x.SearchGT(hi)
		if end-start != hi-lo+1 {
			return false
		}
		var buf []Entry
		pos := start
		for pos < end {
			leaf, slot := x.LeafOf(pos)
			buf = x.LeafEntries(leaf, buf)
			for ; slot < len(buf) && pos < end; slot++ {
				e := buf[slot]
				if e.Key < lo || e.Key > hi || tb.RowAt(e.Row).C2 != e.Key {
					return false
				}
				pos++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
