// Package btree implements the non-clustered secondary index the paper's
// index scans traverse: a bulk-loaded B+-tree over a table's C2 column whose
// leaves hold (key, row) entries in key order.
//
// Like the heap tables, the index has two backings behind one type:
// materialized (entries sorted and stored, built from a table.Materialized)
// and synthetic (entries computed from a table.Synthetic's key permutation —
// keys are dense in [0, rows), so the entry at global position k is exactly
// key k). Index pages occupy a disk file of their own: internal pages first,
// then one page per leaf, so leaf reads cost real simulated I/O through the
// buffer pool.
package btree

import (
	"fmt"
	"sort"

	"pioqo/internal/disk"
	"pioqo/internal/table"
)

// Entry is one (key, row) pair in a leaf page.
type Entry struct {
	Key int64
	Row int64
}

// DefaultLeafCap is the default number of entries per leaf page: 4 KB pages
// with 16-byte (key, row) entries and a small header.
const DefaultLeafCap = 250

// DefaultFanout is the default separator fanout of internal pages.
const DefaultFanout = 400

// Index is a bulk-loaded B+-tree over a heap table's C2 column.
type Index struct {
	name    string
	file    *disk.File
	leafCap int
	fanout  int
	entries int64
	height  int
	inner   int64 // number of internal pages, stored before the leaves

	sorted []Entry          // materialized backing (nil for synthetic)
	syn    *table.Synthetic // synthetic backing (nil for materialized)
}

// NewMaterialized bulk-loads an index over t's C2 column, allocating its
// page file on m. leafCap and fanout may be zero to use the defaults.
func NewMaterialized(m *disk.Manager, t *table.Materialized, leafCap, fanout int) *Index {
	idx := newIndex(t.Name()+"_c2", t.Rows(), leafCap, fanout)
	idx.sorted = make([]Entry, t.Rows())
	for r := int64(0); r < t.Rows(); r++ {
		idx.sorted[r] = Entry{Key: t.RowAt(r).C2, Row: r}
	}
	sort.Slice(idx.sorted, func(i, j int) bool {
		if idx.sorted[i].Key != idx.sorted[j].Key {
			return idx.sorted[i].Key < idx.sorted[j].Key
		}
		return idx.sorted[i].Row < idx.sorted[j].Row
	})
	idx.allocate(m)
	return idx
}

// NewSynthetic builds the analytic index over a synthetic table: entry k is
// (k, t.RowForKey(k)), so nothing is stored.
func NewSynthetic(m *disk.Manager, t *table.Synthetic, leafCap, fanout int) *Index {
	idx := newIndex(t.Name()+"_c2", t.Rows(), leafCap, fanout)
	idx.syn = t
	idx.allocate(m)
	return idx
}

func newIndex(name string, entries int64, leafCap, fanout int) *Index {
	if leafCap <= 0 {
		leafCap = DefaultLeafCap
	}
	if fanout <= 1 {
		fanout = DefaultFanout
	}
	idx := &Index{name: name, leafCap: leafCap, fanout: fanout, entries: entries}
	// Height and internal page count from the leaf count upward.
	nodes := idx.Leaves()
	idx.height = 1
	for nodes > 1 {
		nodes = (nodes + int64(fanout) - 1) / int64(fanout)
		idx.inner += nodes
		idx.height++
	}
	return idx
}

func (x *Index) allocate(m *disk.Manager) {
	x.file = m.MustAllocate(x.name, x.inner+x.Leaves())
}

// Name returns the index name.
func (x *Index) Name() string { return x.name }

// File returns the disk extent holding the index pages.
func (x *Index) File() *disk.File { return x.file }

// Entries returns the total number of index entries (= table rows).
func (x *Index) Entries() int64 { return x.entries }

// LeafCap returns the number of entries per full leaf page.
func (x *Index) LeafCap() int { return x.leafCap }

// Leaves returns the number of leaf pages.
func (x *Index) Leaves() int64 {
	return (x.entries + int64(x.leafCap) - 1) / int64(x.leafCap)
}

// Height returns the number of levels, counting the leaf level; a one-leaf
// tree has height 1.
func (x *Index) Height() int { return x.height }

// InternalPages returns the number of non-leaf pages.
func (x *Index) InternalPages() int64 { return x.inner }

// LeafPage returns the file page number of leaf leafNo. Internal pages come
// first in the file.
func (x *Index) LeafPage(leafNo int64) int64 {
	if leafNo < 0 || leafNo >= x.Leaves() {
		panic(fmt.Sprintf("btree %s: leaf %d of %d", x.name, leafNo, x.Leaves()))
	}
	return x.inner + leafNo
}

// DescentPath returns the file pages an index traversal reads walking from
// the root to the leaf level (excluding the leaf itself): one page per
// internal level. The concrete page identities matter only for buffer-pool
// residency, so the path uses the first page of each level.
func (x *Index) DescentPath() []int64 {
	if x.height <= 1 {
		return nil
	}
	path := make([]int64, 0, x.height-1)
	// Level sizes from the level just above the leaves up to the root.
	var levels []int64
	nodes := x.Leaves()
	for nodes > 1 {
		nodes = (nodes + int64(x.fanout) - 1) / int64(x.fanout)
		levels = append(levels, nodes)
	}
	// Pages are laid out root first. levels is bottom-up, so walk backwards.
	page := int64(0)
	for i := len(levels) - 1; i >= 0; i-- {
		path = append(path, page)
		page += levels[i]
	}
	return path
}

// SearchGE returns the global position of the first entry with key >= key,
// or Entries() if no such entry exists.
func (x *Index) SearchGE(key int64) int64 {
	if x.syn != nil {
		return clamp(key, 0, x.entries)
	}
	return int64(sort.Search(len(x.sorted), func(i int) bool {
		return x.sorted[i].Key >= key
	}))
}

// SearchGT returns the global position of the first entry with key > key,
// or Entries() if no such entry exists.
func (x *Index) SearchGT(key int64) int64 {
	if x.syn != nil {
		return clamp(key+1, 0, x.entries)
	}
	return int64(sort.Search(len(x.sorted), func(i int) bool {
		return x.sorted[i].Key > key
	}))
}

// RangeCount returns the number of entries with lo <= key <= hi.
func (x *Index) RangeCount(lo, hi int64) int64 {
	if hi < lo {
		return 0
	}
	return x.SearchGT(hi) - x.SearchGE(lo)
}

// LeafOf converts a global entry position to its (leaf, slot) coordinates.
func (x *Index) LeafOf(pos int64) (leaf int64, slot int) {
	return pos / int64(x.leafCap), int(pos % int64(x.leafCap))
}

// LeafEntries appends leaf leafNo's entries to buf (reusing its backing
// array) and returns the result in key order.
func (x *Index) LeafEntries(leafNo int64, buf []Entry) []Entry {
	lo := leafNo * int64(x.leafCap)
	hi := lo + int64(x.leafCap)
	if hi > x.entries {
		hi = x.entries
	}
	if lo >= hi {
		panic(fmt.Sprintf("btree %s: empty leaf %d", x.name, leafNo))
	}
	buf = buf[:0]
	if x.syn != nil {
		// One permutation inversion for the first entry, then the fixed
		// row stride (mod rows) walks the rest of the leaf — no per-entry
		// modular multiplication.
		row, stride, n := x.syn.RowForKey(lo), x.syn.RowStride(), x.syn.Rows()
		for k := lo; k < hi; k++ {
			buf = append(buf, Entry{Key: k, Row: row})
			row += stride
			if row >= n {
				row -= n
			}
		}
		return buf
	}
	return append(buf, x.sorted[lo:hi]...)
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
