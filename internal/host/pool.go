// Package host fans independent work items out across host CPUs. It exists
// for the experiment harness: every grid point of a parameter sweep builds
// its own sim.Env, so points share no state and can run on a worker pool —
// host parallelism around the simulator, as opposed to the simulated
// parallelism inside it.
package host

import (
	"sync"
	"sync/atomic"
)

// Sweep runs fn(i) for every i in [0, n), fanning the calls out over a pool
// of workers goroutines. It returns only when every call has finished.
// Callers write results into an index-addressed slice, so the output order
// never depends on the worker count or scheduling: a workers==1 run and a
// workers==N run produce identical results as long as each fn(i) is
// self-contained.
//
// workers <= 1 (or n <= 1) runs everything on the calling goroutine — the
// serial sweep, with no goroutines involved. If any fn panics, Sweep
// re-raises the first panic on the calling goroutine after the pool drains.
func Sweep(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
							failed.Store(true)
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
