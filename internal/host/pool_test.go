package host

import (
	"sync/atomic"
	"testing"
)

func TestSweepCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 57
		var hits [n]atomic.Int32
		Sweep(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestSweepSerialAndParallelAgree(t *testing.T) {
	run := func(workers int) [40]int {
		var out [40]int
		Sweep(workers, len(out), func(i int) { out[i] = i * i })
		return out
	}
	if run(1) != run(7) {
		t.Fatal("parallel sweep output differs from serial")
	}
}

func TestSweepZeroItems(t *testing.T) {
	Sweep(4, 0, func(i int) { t.Fatal("fn called for empty sweep") })
}

func TestSweepRepanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	Sweep(4, 16, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}
