package device

import (
	"container/list"

	"pioqo/internal/sim"
)

// SSDConfig describes a flash solid-state drive. The zero value is not
// usable; start from DefaultSSDConfig.
type SSDConfig struct {
	// Capacity is the device size in bytes.
	Capacity int64

	// Units is the number of internal flash units that can service requests
	// concurrently (the product of channel/package/die/plane parallelism the
	// paper cites). Together with CtrlOverhead it determines the beneficial
	// queue depth: throughput grows with queue depth until either all units
	// are busy or the serialized controller saturates.
	Units int

	// FlashLatency is the fixed flash array access latency per chunk.
	FlashLatency sim.Duration

	// UnitMBps is the streaming rate of one flash unit in MB/s; a chunk of n
	// bytes occupies its unit for FlashLatency + n/UnitMBps.
	UnitMBps float64

	// StripeBytes is the internal striping granularity: requests larger than
	// this are split into stripe-sized chunks spread over the units, which is
	// where the sequential-read advantage of large transfers comes from.
	StripeBytes int

	// CtrlOverhead is the serialized controller command-processing time per
	// request; it caps IOPS regardless of internal parallelism.
	CtrlOverhead sim.Duration

	// BusMBps is the host interface bandwidth in MB/s; all completed data is
	// serialized over it, capping sequential throughput.
	BusMBps float64

	// ReadaheadWindow enables sequential detection: a read that begins
	// exactly where the previous accepted read ended, and is no larger than
	// this window, is served from the controller's readahead buffer (bus
	// transfer only). This is what makes small sequential reads cheap on
	// real SSDs even at queue depth 1.
	ReadaheadWindow int

	// ProgramLatency is the flash program (write) time per chunk; programs
	// are several times slower than reads on NAND flash. Zero defaults to
	// 2.5x the read latency.
	ProgramLatency sim.Duration

	// MapSpanBytes is the range of the logical address space covered by one
	// FTL mapping page; MapCachePages is how many mapping pages the
	// controller caches (LRU). A request whose mapping page is not cached
	// pays MapMissPenalty extra flash-unit time. This is the mechanism
	// behind the band-size sensitivity of SSDs in the paper's Fig. 7 — and
	// because the penalty is paid on the parallel units while the IOPS cap
	// is the serialized controller, the band effect fades at high queue
	// depth, as the paper observes.
	MapSpanBytes   int64
	MapCachePages  int
	MapMissPenalty sim.Duration
}

// DefaultSSDConfig models the paper's consumer PCIe SSD: ~1.5 GB/s
// sequential reads, random 4 KB reads reaching roughly half of sequential
// throughput at queue depth 32, near-flat latency up to the internal
// parallelism limit, and a mild band-size penalty that shrinks as queue
// depth grows.
func DefaultSSDConfig() SSDConfig {
	return SSDConfig{
		Capacity:        256 << 30,
		Units:           48,
		FlashLatency:    140 * sim.Microsecond,
		UnitMBps:        400,
		StripeBytes:     64 << 10,
		CtrlOverhead:    5 * sim.Microsecond, // caps IOPS at ~200K
		ProgramLatency:  350 * sim.Microsecond,
		BusMBps:         1500,
		ReadaheadWindow: 1 << 20,
		MapSpanBytes:    4 << 20,
		MapCachePages:   512, // 2 GiB of mapping coverage
		MapMissPenalty:  60 * sim.Microsecond,
	}
}

// SATASSDConfig models a SATA-era consumer SSD: the 550 MB/s interface
// and a slower controller cap both sequential throughput and IOPS well
// below the PCIe drive, and the beneficial queue depth ends near 16.
// Useful for showing that the calibrated QDTT model adapts across device
// generations rather than encoding one device's behaviour.
func SATASSDConfig() SSDConfig {
	cfg := DefaultSSDConfig()
	cfg.Units = 16
	cfg.FlashLatency = 160 * sim.Microsecond
	cfg.UnitMBps = 250
	cfg.CtrlOverhead = 11 * sim.Microsecond // ~90K IOPS cap
	cfg.BusMBps = 550
	return cfg
}

// NVMeSSDConfig models a datacenter NVMe drive a generation beyond the
// paper's: far more internal parallelism, a faster controller, and a
// 3.5 GB/s interface. Its beneficial queue depth extends beyond 32 — the
// "future technologies" case the paper argues a principled cost model
// must absorb without code changes.
func NVMeSSDConfig() SSDConfig {
	cfg := DefaultSSDConfig()
	cfg.Units = 128
	cfg.FlashLatency = 90 * sim.Microsecond
	cfg.UnitMBps = 600
	cfg.CtrlOverhead = 1500 * sim.Nanosecond // ~660K IOPS cap
	cfg.BusMBps = 3500
	cfg.MapCachePages = 2048
	return cfg
}

// SSD is a mechanistic flash drive: a serialized controller front-end, a
// pool of parallel flash units, an LRU FTL mapping cache, and a shared host
// bus. Requests larger than the stripe size are split into chunks that
// proceed through the units in parallel.
type SSD struct {
	env     *sim.Env
	cfg     SSDConfig
	metrics *Metrics

	ctrl  *fifoServer
	units *unitPool
	bus   *fifoServer

	mapCache *lruCache
	lastEnd  int64 // end offset of the previously accepted read, for readahead
}

// NewSSD returns a drive built from cfg, bound to e.
func NewSSD(e *sim.Env, cfg SSDConfig) *SSD {
	if cfg.Capacity <= 0 || cfg.Units <= 0 || cfg.UnitMBps <= 0 || cfg.BusMBps <= 0 || cfg.StripeBytes <= 0 {
		panic("device: invalid SSD config")
	}
	return &SSD{
		env:      e,
		cfg:      cfg,
		metrics:  NewMetrics(e),
		ctrl:     newFIFOServer(e),
		units:    newUnitPool(e, cfg.Units),
		bus:      newFIFOServer(e),
		mapCache: newLRUCache(cfg.MapCachePages),
		lastEnd:  -1,
	}
}

// Name implements Device.
func (d *SSD) Name() string { return "ssd" }

// Size implements Device.
func (d *SSD) Size() int64 { return d.cfg.Capacity }

// Metrics implements Device.
func (d *SSD) Metrics() *Metrics { return d.metrics }

// WriteAt implements Device: the data crosses the bus first, an FTL map
// update rides the controller, and the flash program occupies a unit for
// the (slower) program latency. Page-mapped FTLs write anywhere, so there
// is no band-size penalty on writes.
func (d *SSD) WriteAt(offset int64, length int) *sim.Completion {
	validate(d, offset, length)
	done := sim.NewCompletion(d.env)
	submitted := d.env.Now()
	d.metrics.Submitted()
	d.lastEnd = -1 // a write interposes in the readahead stream

	program := d.cfg.ProgramLatency
	if program == 0 {
		program = d.cfg.FlashLatency * 5 / 2
	}
	d.ctrl.submit(d.cfg.CtrlOverhead, func() {
		chunks := (length + d.cfg.StripeBytes - 1) / d.cfg.StripeBytes
		remaining := chunks
		for i := 0; i < chunks; i++ {
			chunkLen := d.cfg.StripeBytes
			if i == chunks-1 {
				chunkLen = length - i*d.cfg.StripeBytes
			}
			transfer := sim.Duration(float64(chunkLen) / d.cfg.BusMBps * 1e3)
			service := program + sim.Duration(float64(chunkLen)/d.cfg.UnitMBps*1e3)
			d.bus.submit(transfer, func() {
				d.units.submit(service, func() {
					remaining--
					if remaining == 0 {
						d.metrics.Completed(length, sim.Duration(d.env.Now()-submitted))
						done.Fire()
					}
				})
			})
		}
	})
	return done
}

// ReadAt implements Device.
func (d *SSD) ReadAt(offset int64, length int) *sim.Completion {
	validate(d, offset, length)
	done := sim.NewCompletion(d.env)
	submitted := d.env.Now()
	d.metrics.Submitted()

	// Sequential detection happens at acceptance: a read continuing the
	// previous one within the readahead window skips the flash array
	// entirely — its data is already streaming into the readahead buffer.
	seqHit := d.lastEnd >= 0 && offset == d.lastEnd &&
		d.cfg.ReadaheadWindow > 0 && length <= d.cfg.ReadaheadWindow
	d.lastEnd = offset + int64(length)
	if seqHit {
		d.ctrl.submit(d.cfg.CtrlOverhead, func() {
			transfer := sim.Duration(float64(length) / d.cfg.BusMBps * 1e3)
			d.bus.submit(transfer, func() {
				d.metrics.Completed(length, sim.Duration(d.env.Now()-submitted))
				done.Fire()
			})
		})
		return done
	}

	d.ctrl.submit(d.cfg.CtrlOverhead, func() {
		// FTL lookup happens in the controller; a miss charges the extra
		// mapping-page read to the first chunk's flash unit.
		missPenalty := sim.Duration(0)
		if d.cfg.MapCachePages > 0 && !d.mapCache.touch(offset/d.cfg.MapSpanBytes) {
			missPenalty = d.cfg.MapMissPenalty
		}

		chunks := (length + d.cfg.StripeBytes - 1) / d.cfg.StripeBytes
		remaining := chunks
		for i := 0; i < chunks; i++ {
			chunkLen := d.cfg.StripeBytes
			if i == chunks-1 {
				chunkLen = length - i*d.cfg.StripeBytes
			}
			service := d.cfg.FlashLatency + sim.Duration(float64(chunkLen)/d.cfg.UnitMBps*1e3)
			if i == 0 {
				service += missPenalty
			}
			transfer := sim.Duration(float64(chunkLen) / d.cfg.BusMBps * 1e3)
			d.units.submit(service, func() {
				d.bus.submit(transfer, func() {
					remaining--
					if remaining == 0 {
						d.metrics.Completed(length, sim.Duration(d.env.Now()-submitted))
						done.Fire()
					}
				})
			})
		}
	})
	return done
}

// fifoServer is a single-server FIFO queue driven by simulation events: each
// job occupies the server for its service time, then runs its continuation.
type fifoServer struct {
	env   *sim.Env
	busy  bool
	queue []serverJob
}

type serverJob struct {
	service sim.Duration
	then    func()
}

func newFIFOServer(e *sim.Env) *fifoServer { return &fifoServer{env: e} }

func (s *fifoServer) submit(service sim.Duration, then func()) {
	s.queue = append(s.queue, serverJob{service, then})
	if !s.busy {
		s.next()
	}
}

func (s *fifoServer) next() {
	if len(s.queue) == 0 {
		s.busy = false
		return
	}
	s.busy = true
	job := s.queue[0]
	s.queue = s.queue[1:]
	s.env.Schedule(job.service, func() {
		job.then()
		s.next()
	})
}

// unitPool is a k-server FIFO queue: jobs run on any free unit. Modelling
// the flash array as a pool (rather than static LBA-to-channel binding)
// reflects die/plane interleaving and is what makes burst-of-n and steady-n
// queue depths equivalent on SSD — the reason the paper finds the GW and AW
// calibration methods agree on SSD but not on spinning media.
type unitPool struct {
	env   *sim.Env
	free  int
	queue []serverJob
}

func newUnitPool(e *sim.Env, k int) *unitPool { return &unitPool{env: e, free: k} }

func (p *unitPool) submit(service sim.Duration, then func()) {
	if p.free == 0 {
		p.queue = append(p.queue, serverJob{service, then})
		return
	}
	p.run(serverJob{service, then})
}

func (p *unitPool) run(job serverJob) {
	p.free--
	p.env.Schedule(job.service, func() {
		p.free++
		job.then()
		if len(p.queue) > 0 && p.free > 0 {
			next := p.queue[0]
			p.queue = p.queue[1:]
			p.run(next)
		}
	})
}

// lruCache is a fixed-capacity LRU set of int64 keys.
type lruCache struct {
	capacity int
	ll       *list.List
	items    map[int64]*list.Element
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[int64]*list.Element, capacity),
	}
}

// touch reports whether key was cached, and in either case makes it the
// most recently used entry (inserting it, evicting the LRU entry if full).
func (c *lruCache) touch(key int64) bool {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return true
	}
	if c.ll.Len() >= c.capacity {
		lru := c.ll.Back()
		c.ll.Remove(lru)
		delete(c.items, lru.Value.(int64))
	}
	c.items[key] = c.ll.PushFront(key)
	return false
}
