package device

import (
	"fmt"
	"testing"

	"pioqo/internal/sim"
)

const page = 4096

// measureRandom drives dev with qd worker processes, each issuing count
// synchronous random page-sized reads uniformly within the first band bytes
// of the device, and returns the device metrics for the interval.
func measureRandom(t *testing.T, newDev func(*sim.Env) Device, qd int, band int64, perWorker int) Summary {
	t.Helper()
	env := sim.NewEnv(12345)
	dev := newDev(env)
	if band > dev.Size() {
		t.Fatalf("band %d exceeds device size %d", band, dev.Size())
	}
	pagesInBand := band / page
	for w := 0; w < qd; w++ {
		env.Go(fmt.Sprintf("w%d", w), func(p *sim.Proc) {
			for i := 0; i < perWorker; i++ {
				off := env.Rand().Int63n(pagesInBand) * page
				p.Wait(dev.ReadAt(off, page))
			}
		})
	}
	env.Run()
	return dev.Metrics().Snapshot()
}

// measureSequential reads total bytes in reqSize chunks back to back with a
// single worker and returns the metrics.
func measureSequential(t *testing.T, newDev func(*sim.Env) Device, reqSize int, total int64) Summary {
	t.Helper()
	env := sim.NewEnv(1)
	dev := newDev(env)
	env.Go("seq", func(p *sim.Proc) {
		for off := int64(0); off+int64(reqSize) <= total; off += int64(reqSize) {
			p.Wait(dev.ReadAt(off, reqSize))
		}
	})
	env.Run()
	return dev.Metrics().Snapshot()
}

func newHDD(e *sim.Env) Device  { return NewHDD(e, DefaultHDDConfig()) }
func newSSD(e *sim.Env) Device  { return NewSSD(e, DefaultSSDConfig()) }
func newRAID8(e *sim.Env) Device {
	return NewRAID0(e, 8, 64<<10, HDD15KConfig())
}

func TestHDDSequentialThroughputNearMediaRate(t *testing.T) {
	s := measureSequential(t, newHDD, 256<<10, 64<<20)
	if s.ThroughputMBps < 80 || s.ThroughputMBps > 115 {
		t.Errorf("sequential throughput = %.1f MB/s, want ~110", s.ThroughputMBps)
	}
}

func TestHDDRandomQD1IsSlow(t *testing.T) {
	s := measureRandom(t, newHDD, 1, 32<<30, 300)
	if s.AvgLatency < 5*sim.Millisecond || s.AvgLatency > 25*sim.Millisecond {
		t.Errorf("random 4K latency = %v, want 5-25ms", s.AvgLatency)
	}
	if s.ThroughputMBps > 2 {
		t.Errorf("random 4K QD1 throughput = %.2f MB/s, want < 2", s.ThroughputMBps)
	}
}

func TestHDDElevatorImprovesThroughputButNotLatency(t *testing.T) {
	qd1 := measureRandom(t, newHDD, 1, 32<<30, 200)
	qd32 := measureRandom(t, newHDD, 32, 32<<30, 60)
	if qd32.ThroughputMBps < 1.5*qd1.ThroughputMBps {
		t.Errorf("QD32 throughput %.2f not >1.5x QD1 %.2f",
			qd32.ThroughputMBps, qd1.ThroughputMBps)
	}
	// Even with the elevator, random stays far below sequential (paper: ~1.3%).
	if qd32.ThroughputMBps > 10 {
		t.Errorf("QD32 random throughput %.2f MB/s implausibly high", qd32.ThroughputMBps)
	}
	if qd32.AvgLatency < qd1.AvgLatency {
		t.Errorf("QD32 latency %v < QD1 latency %v; queueing should raise latency",
			qd32.AvgLatency, qd1.AvgLatency)
	}
}

func TestHDDSmallerBandIsCheaper(t *testing.T) {
	small := measureRandom(t, newHDD, 1, 256<<20, 300)
	large := measureRandom(t, newHDD, 1, 32<<30, 300)
	if small.AvgLatency >= large.AvgLatency {
		t.Errorf("band 256MB latency %v >= band 32GB latency %v; seeks should shrink",
			small.AvgLatency, large.AvgLatency)
	}
}

func TestSSDSequentialNearBusRate(t *testing.T) {
	// Synchronous 1 MiB reads leave pipeline bubbles; still near 1 GB/s.
	s := measureSequential(t, newSSD, 1<<20, 256<<20)
	if s.ThroughputMBps < 900 || s.ThroughputMBps > 1500 {
		t.Errorf("sync sequential throughput = %.0f MB/s, want ~1000", s.ThroughputMBps)
	}
}

func TestSSDPipelinedSequentialHitsBusLimit(t *testing.T) {
	// With a few requests in flight the shared bus becomes the bottleneck.
	env := sim.NewEnv(1)
	dev := newSSD(env)
	const depth, reqSize, total = 4, 1 << 20, 256 << 20
	for w := 0; w < depth; w++ {
		w := w
		env.Go(fmt.Sprintf("seq%d", w), func(p *sim.Proc) {
			for off := int64(w * reqSize); off+reqSize <= total; off += depth * reqSize {
				p.Wait(dev.ReadAt(off, reqSize))
			}
		})
	}
	env.Run()
	s := dev.Metrics().Snapshot()
	if s.ThroughputMBps < 1200 || s.ThroughputMBps > 1510 {
		t.Errorf("pipelined sequential = %.0f MB/s, want near the 1500 MB/s bus", s.ThroughputMBps)
	}
}

func TestSSDRandomScalesWithQueueDepth(t *testing.T) {
	prev := 0.0
	var qd1, qd32 Summary
	for _, qd := range []int{1, 2, 4, 8, 16, 32} {
		s := measureRandom(t, newSSD, qd, 1<<30, 400)
		if s.ThroughputMBps <= prev {
			t.Errorf("QD %d throughput %.1f did not improve on %.1f", qd, s.ThroughputMBps, prev)
		}
		prev = s.ThroughputMBps
		if qd == 1 {
			qd1 = s
		}
		if qd == 32 {
			qd32 = s
		}
	}
	gain := qd32.ThroughputMBps / qd1.ThroughputMBps
	if gain < 10 {
		t.Errorf("QD32/QD1 random gain = %.1fx, want >= 10x", gain)
	}
	// Paper: QD32 random reaches ~51.7% of sequential (1.5 GB/s) on SSD.
	if qd32.ThroughputMBps < 500 || qd32.ThroughputMBps > 1100 {
		t.Errorf("QD32 random throughput = %.0f MB/s, want roughly half of sequential", qd32.ThroughputMBps)
	}
}

func TestSSDLatencyFlatUpToParallelismLimit(t *testing.T) {
	qd1 := measureRandom(t, newSSD, 1, 1<<30, 400)
	qd32 := measureRandom(t, newSSD, 32, 1<<30, 100)
	if qd32.AvgLatency > 3*qd1.AvgLatency {
		t.Errorf("QD32 latency %v vs QD1 %v: should stay near-flat up to 32",
			qd32.AvgLatency, qd1.AvgLatency)
	}
}

func TestSSDBandPenaltyShrinksWithQueueDepth(t *testing.T) {
	smallBand := int64(1 << 30)   // inside mapping-cache coverage
	largeBand := int64(200 << 30) // far beyond coverage

	s1 := measureRandom(t, newSSD, 1, smallBand, 400)
	l1 := measureRandom(t, newSSD, 1, largeBand, 400)
	relQD1 := float64(l1.AvgLatency) / float64(s1.AvgLatency)
	if relQD1 < 1.1 {
		t.Errorf("QD1 band effect %.2fx, want visible (>1.1x)", relQD1)
	}

	// At queue depth 32 the whole cost curve compresses by ~32x, so the
	// *amortized* extra cost of a large band shrinks by more than an order
	// of magnitude (the flattening visible in the paper's Fig. 7).
	amortized := func(s Summary) float64 {
		return float64(s.Elapsed) / float64(s.Requests)
	}
	diffQD1 := amortized(l1) - amortized(s1)
	s32 := measureRandom(t, newSSD, 32, smallBand, 150)
	l32 := measureRandom(t, newSSD, 32, largeBand, 150)
	diffQD32 := amortized(l32) - amortized(s32)
	if diffQD32 > diffQD1/5 {
		t.Errorf("amortized band penalty at QD32 = %.1fus vs %.1fus at QD1; want >5x compression",
			diffQD32/1000, diffQD1/1000)
	}
}

func TestRAIDThroughputScalesWithSpindles(t *testing.T) {
	qd1 := measureRandom(t, newRAID8, 1, 64<<30, 200)
	qd8 := measureRandom(t, newRAID8, 8, 64<<30, 100)
	gain := qd8.ThroughputMBps / qd1.ThroughputMBps
	if gain < 3 {
		t.Errorf("QD8/QD1 gain on 8 spindles = %.1fx, want >= 3x", gain)
	}
}

func TestRAIDStripingSplitsLargeReads(t *testing.T) {
	env := sim.NewEnv(1)
	r := NewRAID0(env, 4, 64<<10, DefaultHDDConfig())
	env.Go("p", func(p *sim.Proc) {
		// 256 KiB spanning exactly 4 stripes lands one segment per child.
		p.Wait(r.ReadAt(0, 256<<10))
	})
	env.Run()
	for i, c := range r.children {
		if got := c.Metrics().Requests; got != 1 {
			t.Errorf("child %d served %d requests, want 1", i, got)
		}
		if got := c.Metrics().Bytes; got != 64<<10 {
			t.Errorf("child %d moved %d bytes, want %d", i, got, 64<<10)
		}
	}
	if r.Metrics().Requests != 1 {
		t.Errorf("array completed %d requests, want 1", r.Metrics().Requests)
	}
}

func TestRAIDUnalignedReadGeometry(t *testing.T) {
	env := sim.NewEnv(1)
	r := NewRAID0(env, 2, 64<<10, DefaultHDDConfig())
	env.Go("p", func(p *sim.Proc) {
		// Starts mid-stripe on child 0, spills onto child 1.
		p.Wait(r.ReadAt(32<<10, 64<<10))
	})
	env.Run()
	if got := r.children[0].Metrics().Bytes; got != 32<<10 {
		t.Errorf("child 0 moved %d, want %d", got, 32<<10)
	}
	if got := r.children[1].Metrics().Bytes; got != 32<<10 {
		t.Errorf("child 1 moved %d, want %d", got, 32<<10)
	}
}

func TestReadOutsideCapacityPanics(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewHDD(env, DefaultHDDConfig())
	for _, bad := range []struct {
		off int64
		len int
	}{{-1, page}, {0, 0}, {d.Size() - 100, page}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for read(%d, %d)", bad.off, bad.len)
				}
			}()
			d.ReadAt(bad.off, bad.len)
		}()
	}
}

func TestMetricsCountsAndQueueDepth(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewSSD(env, DefaultSSDConfig())
	const n = 64
	env.Go("burst", func(p *sim.Proc) {
		var cs []*sim.Completion
		for i := 0; i < n; i++ {
			cs = append(cs, d.ReadAt(int64(i)*page, page))
		}
		p.WaitAll(cs)
	})
	env.Run()
	s := d.Metrics().Snapshot()
	if s.Requests != n {
		t.Errorf("requests = %d, want %d", s.Requests, n)
	}
	if s.Bytes != n*page {
		t.Errorf("bytes = %d, want %d", s.Bytes, n*page)
	}
	if s.AvgQueueDepth < 2 {
		t.Errorf("avg queue depth = %.1f for a burst of %d, want > 2", s.AvgQueueDepth, n)
	}
}

func TestMetricsReset(t *testing.T) {
	env := sim.NewEnv(1)
	d := NewSSD(env, DefaultSSDConfig())
	env.Go("p", func(p *sim.Proc) {
		p.Wait(d.ReadAt(0, page))
		d.Metrics().Reset()
		p.Wait(d.ReadAt(page, page))
	})
	env.Run()
	if got := d.Metrics().Snapshot().Requests; got != 1 {
		t.Errorf("requests after reset = %d, want 1", got)
	}
}

func TestLRUCache(t *testing.T) {
	c := newLRUCache(2)
	if c.touch(1) {
		t.Error("first touch of 1 reported hit")
	}
	if !c.touch(1) {
		t.Error("second touch of 1 reported miss")
	}
	c.touch(2)
	c.touch(3) // evicts 1 (LRU)
	if c.touch(1) {
		t.Error("touch of evicted 1 reported hit")
	}
	// Cache is now {1, 3}: bringing 1 back evicted 2.
	if c.touch(2) {
		t.Error("touch of evicted 2 reported hit")
	}
	// Bringing 2 back evicted 3.
	if c.touch(3) {
		t.Error("touch of evicted 3 reported hit")
	}
	if !c.touch(2) {
		t.Error("2 should still be cached")
	}
}

func TestWritesCompleteOnAllDevices(t *testing.T) {
	for _, mk := range []func(*sim.Env) Device{newSSD, newHDD, newRAID8} {
		env := sim.NewEnv(1)
		dev := mk(env)
		var done bool
		env.Go("w", func(p *sim.Proc) {
			p.Wait(dev.WriteAt(0, page))
			p.Wait(dev.WriteAt(1<<20, 64<<10))
			done = true
		})
		env.Run()
		if !done {
			t.Errorf("%s: writes never completed", dev.Name())
		}
		if got := dev.Metrics().Requests; got != 2 {
			t.Errorf("%s: %d requests metered, want 2", dev.Name(), got)
		}
	}
}

func TestSSDWritesSlowerThanReads(t *testing.T) {
	measure := func(write bool) sim.Duration {
		env := sim.NewEnv(1)
		dev := newSSD(env)
		env.Go("p", func(p *sim.Proc) {
			for i := int64(0); i < 100; i++ {
				off := env.Rand().Int63n(dev.Size()/page) * page
				if write {
					p.Wait(dev.WriteAt(off, page))
				} else {
					p.Wait(dev.ReadAt(off, page))
				}
			}
		})
		return sim.Duration(env.Run())
	}
	reads, writes := measure(false), measure(true)
	if writes <= reads {
		t.Errorf("random writes (%v) not slower than reads (%v); NAND programs are slower",
			writes, reads)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() sim.Duration {
		env := sim.NewEnv(99)
		d := NewSSD(env, DefaultSSDConfig())
		env.Go("p", func(p *sim.Proc) {
			for i := 0; i < 200; i++ {
				off := env.Rand().Int63n(d.Size()/page) * page
				p.Wait(d.ReadAt(off, page))
			}
		})
		return sim.Duration(env.Run())
	}
	if a, b := run(), run(); a != b {
		t.Errorf("two identical runs ended at %v and %v", a, b)
	}
}
