package device

import (
	"fmt"

	"pioqo/internal/sim"
)

// RAID0 stripes reads over k child devices. It models the paper's
// 8-spindle 15,000 RPM array: queue depth spreads requests across spindles,
// so random-read throughput scales with queue depth up to the spindle count
// while per-request latency grows once individual spindles start queueing —
// the regime where the paper's AW calibration method measures lower costs
// than GW (Fig. 11) and where exponential queue-depth calibration with
// linear interpolation must remain accurate (Fig. 12).
type RAID0 struct {
	env      *sim.Env
	children []Device
	stripe   int64
	metrics  *Metrics
	size     int64
}

// HDD15KConfig models one 15,000 RPM enterprise spindle of the paper's RAID
// array: faster rotation and seeks than the commodity 7200 RPM drive.
func HDD15KConfig() HDDConfig {
	cfg := DefaultHDDConfig()
	cfg.RPM = 15000
	cfg.SeekSettle = 300 * sim.Microsecond
	cfg.SeekFullStroke = 8 * sim.Millisecond
	cfg.MediaMBps = 180
	return cfg
}

// NewRAID0 returns a stripe set over k spindles built from cfg, with the
// given stripe unit in bytes.
func NewRAID0(e *sim.Env, k int, stripeBytes int64, cfg HDDConfig) *RAID0 {
	if k <= 0 || stripeBytes <= 0 {
		panic("device: invalid RAID0 geometry")
	}
	r := &RAID0{
		env:     e,
		stripe:  stripeBytes,
		metrics: NewMetrics(e),
		size:    cfg.Capacity * int64(k),
	}
	for i := 0; i < k; i++ {
		r.children = append(r.children, NewHDD(e, cfg))
	}
	return r
}

// Name implements Device.
func (r *RAID0) Name() string { return fmt.Sprintf("raid0x%d", len(r.children)) }

// Size implements Device.
func (r *RAID0) Size() int64 { return r.size }

// Metrics implements Device.
func (r *RAID0) Metrics() *Metrics { return r.metrics }

// Spindles returns the number of child devices.
func (r *RAID0) Spindles() int { return len(r.children) }

// WriteAt implements Device, striping like ReadAt (RAID0 has no parity).
func (r *RAID0) WriteAt(offset int64, length int) *sim.Completion {
	return r.readOrWrite(offset, length, true)
}

// ReadAt implements Device, splitting the request at stripe boundaries and
// completing when every child segment has completed.
func (r *RAID0) ReadAt(offset int64, length int) *sim.Completion {
	return r.readOrWrite(offset, length, false)
}

func (r *RAID0) readOrWrite(offset int64, length int, write bool) *sim.Completion {
	validate(r, offset, length)
	done := sim.NewCompletion(r.env)
	submitted := r.env.Now()
	r.metrics.Submitted()

	type segment struct {
		child       int
		childOffset int64
		length      int
	}
	var segs []segment
	for remaining := int64(length); remaining > 0; {
		stripeIdx := offset / r.stripe
		within := offset % r.stripe
		segLen := r.stripe - within
		if segLen > remaining {
			segLen = remaining
		}
		child := int(stripeIdx % int64(len(r.children)))
		childStripe := stripeIdx / int64(len(r.children))
		segs = append(segs, segment{
			child:       child,
			childOffset: childStripe*r.stripe + within,
			length:      int(segLen),
		})
		offset += segLen
		remaining -= segLen
	}

	pending := len(segs)
	for _, s := range segs {
		var c *sim.Completion
		if write {
			c = r.children[s.child].WriteAt(s.childOffset, s.length)
		} else {
			c = r.children[s.child].ReadAt(s.childOffset, s.length)
		}
		c.OnFire(func() {
			pending--
			if pending == 0 {
				r.metrics.Completed(length, sim.Duration(r.env.Now()-submitted))
				done.Fire()
			}
		})
	}
	return done
}
