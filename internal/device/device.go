// Package device implements mechanistic storage device models — HDD, SSD,
// and RAID0 — that run in virtual time on the sim kernel.
//
// These models stand in for the paper's physical hardware (a 7200 RPM hard
// drive, a consumer PCIe SSD, and an 8-spindle 15 kRPM RAID array). They are
// deliberately mechanistic rather than analytic: requests move through
// queues, seek arms, flash channels, and shared buses, so that the
// queue-depth and band-size behaviours the QDTT cost model captures are
// *discovered* by the calibration code, not baked into it.
//
// The behavioural targets, taken from the paper's measurements:
//
//   - HDD: sequential ≫ random; elevator scheduling makes queue depth help
//     throughput modestly while increasing per-request latency; larger band
//     sizes mean longer seeks and higher cost.
//   - SSD: random throughput scales near-linearly with queue depth up to the
//     internal parallelism limit with roughly flat latency; a mild band-size
//     penalty (FTL mapping-cache misses) that fades at high queue depth;
//     sequential reads bounded by host interface bandwidth.
//   - RAID0: queue depth spreads requests over spindles, so throughput
//     scales with queue depth up to the spindle count while per-request
//     latency grows once spindles queue.
package device

import (
	"fmt"

	"pioqo/internal/obs"
	"pioqo/internal/sim"
)

// Device is an asynchronous block device in virtual time. Submit queues a
// read and returns immediately; the returned completion fires when the data
// would be in host memory. Devices are not safe for host-level concurrent
// use; all calls must come from simulation context (process or event).
type Device interface {
	// ReadAt submits an asynchronous read of length bytes at offset.
	ReadAt(offset int64, length int) *sim.Completion

	// WriteAt submits an asynchronous write of length bytes at offset. The
	// completion fires when the device has accepted the data durably (for
	// the SSD, after the flash program; for spinning media, after the
	// sectors pass under the head).
	WriteAt(offset int64, length int) *sim.Completion

	// Size returns the device capacity in bytes.
	Size() int64

	// Name returns a short human-readable model name.
	Name() string

	// Metrics returns the device's instrumentation counters.
	Metrics() *Metrics
}

// validate panics on malformed request geometry; device models call it at
// the top of ReadAt.
func validate(dev Device, offset int64, length int) {
	if length <= 0 {
		panic(fmt.Sprintf("device %s: read of %d bytes", dev.Name(), length))
	}
	if offset < 0 || offset+int64(length) > dev.Size() {
		panic(fmt.Sprintf("device %s: read [%d, %d) outside capacity %d",
			dev.Name(), offset, offset+int64(length), dev.Size()))
	}
}

// Metrics instruments a device: completed request counts, bytes moved, the
// time-integral of outstanding requests (average queue depth), and summed
// request latency. Snapshot/Reset let experiments meter an interval, which
// is how Table 3's throughput numbers and the queue-depth profiles of §2
// are produced.
//
// The queue-depth integral lives in an obs.Gauge so the same reading feeds
// both the interval Summary and any registry the device is Published into.
// The gauge and the published counters are cumulative across the device's
// lifetime; Reset only moves this struct's interval baseline.
type Metrics struct {
	env *sim.Env

	depth  *obs.Gauge // outstanding requests; its integral is ∫ depth dt
	qdBase float64    // depth.Integral() at the last Reset

	started sim.Time // interval start (set by Reset)

	Requests   int64        // completed requests
	Bytes      int64        // completed bytes
	LatencySum sim.Duration // sum of request latencies

	// Cumulative registry mirrors, nil until Publish.
	reqCtr, byteCtr, latCtr *obs.Counter
	latHist                 *obs.Histogram
}

// NewMetrics returns zeroed metrics bound to e.
func NewMetrics(e *sim.Env) *Metrics {
	return &Metrics{env: e, depth: obs.NewGauge(e)}
}

// latencyBucketsUs are histogram edges for published request latencies, in
// microseconds: 50 µs flash reads through multi-rotation HDD waits.
var latencyBucketsUs = []float64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000}

// Publish registers this device's instruments in reg under the catalog's
// device.* names: the live queue-depth gauge plus cumulative counters for
// requests, bytes, and latency, and a request-latency histogram. Counters
// never reset — callers attribute intervals by diffing registry snapshots.
func (m *Metrics) Publish(reg *obs.Registry) {
	reg.AdoptGauge(obs.MetricDeviceQueueDepth, m.depth)
	m.reqCtr = reg.Counter(obs.MetricDeviceRequests)
	m.byteCtr = reg.Counter(obs.MetricDeviceBytes)
	m.latCtr = reg.Counter(obs.MetricDeviceLatencyNs)
	m.latHist = reg.Histogram(obs.MetricDeviceLatencyUs, latencyBucketsUs)
}

// Submitted records a request entering the device.
func (m *Metrics) Submitted() {
	m.depth.Add(1)
}

// Completed records a request leaving the device after latency d moving n
// bytes.
func (m *Metrics) Completed(n int, d sim.Duration) {
	m.depth.Add(-1)
	if m.depth.Value() < 0 {
		panic("device: more completions than submissions")
	}
	m.Requests++
	m.Bytes += int64(n)
	m.LatencySum += d
	if m.reqCtr != nil {
		m.reqCtr.Inc()
		m.byteCtr.Add(int64(n))
		m.latCtr.Add(int64(d))
		m.latHist.Observe(d.Micros())
	}
}

// Outstanding reports the number of in-flight requests right now.
func (m *Metrics) Outstanding() int { return int(m.depth.Value()) }

// DepthIntegral reports the cumulative time-integral of the queue depth
// (∫ depth dt, in gauge-value × nanoseconds) since the start of the
// simulation. Diffing it over a window yields the sustained depth the
// workload actually generated — the broker's device-feedback probe.
func (m *Metrics) DepthIntegral() float64 { return m.depth.Integral() }

// Reset zeroes the interval counters and restarts the metering interval at
// the current virtual time. In-flight requests remain accounted for
// queue-depth purposes, and published registry instruments keep
// accumulating.
func (m *Metrics) Reset() {
	m.qdBase = m.depth.Integral()
	m.started = m.env.Now()
	m.Requests = 0
	m.Bytes = 0
	m.LatencySum = 0
}

// Snapshot summarises the interval since the last Reset (or the start of
// the simulation).
func (m *Metrics) Snapshot() Summary {
	elapsed := m.env.Now() - m.started
	s := Summary{
		Requests: m.Requests,
		Bytes:    m.Bytes,
		Elapsed:  sim.Duration(elapsed),
	}
	if elapsed > 0 {
		s.AvgQueueDepth = (m.depth.Integral() - m.qdBase) / float64(elapsed)
		s.ThroughputMBps = float64(m.Bytes) / 1e6 / sim.Duration(elapsed).Seconds()
	}
	if m.Requests > 0 {
		s.AvgLatency = sim.Duration(int64(m.LatencySum) / m.Requests)
	}
	return s
}

// Summary is a point-in-time reading of device metrics over an interval.
type Summary struct {
	Requests       int64
	Bytes          int64
	Elapsed        sim.Duration
	AvgQueueDepth  float64
	AvgLatency     sim.Duration
	ThroughputMBps float64
}

func (s Summary) String() string {
	return fmt.Sprintf("%d reqs, %.1f MB, %.2f MB/s, avg QD %.1f, avg lat %v",
		s.Requests, float64(s.Bytes)/1e6, s.ThroughputMBps, s.AvgQueueDepth, s.AvgLatency)
}
