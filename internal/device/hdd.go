package device

import (
	"fmt"
	"math"

	"pioqo/internal/sim"
)

// HDDConfig describes a single-spindle hard disk drive. The zero value is
// not usable; start from DefaultHDDConfig.
type HDDConfig struct {
	// Capacity is the device size in bytes.
	Capacity int64

	// RPM is the spindle speed; it fixes the rotation period.
	RPM int

	// TrackBytes is the (simplified, constant) number of bytes per track.
	TrackBytes int64

	// SeekSettle is the head settle time charged on any track change.
	SeekSettle sim.Duration

	// SeekFullStroke is the seek time across the whole platter. Seeks over
	// d tracks cost SeekSettle + SeekFullStroke·sqrt(d/totalTracks), the
	// classic square-root seek curve.
	SeekFullStroke sim.Duration

	// MediaMBps is the sustained media transfer rate in MB/s (1e6 bytes).
	MediaMBps float64

	// QueueDepthMax is how many queued requests the elevator examines when
	// picking the next request to service (models NCQ depth).
	QueueDepthMax int

	// ReadaheadWindow is the track-cache readahead window: a read that
	// starts exactly where the previous one ended, within this many bytes,
	// is served at media rate with no mechanical positioning.
	ReadaheadWindow int
}

// DefaultHDDConfig models the paper's commodity 7200 RPM drive:
// ~110 MB/s sequential, ~85 IOPS random 4 KB at queue depth 1, and a modest
// elevator gain at higher queue depths (the paper measures random reads at
// queue depth 32 reaching only ~1.3% of sequential throughput).
func DefaultHDDConfig() HDDConfig {
	return HDDConfig{
		Capacity:        64 << 30, // 64 GiB of addressable test area
		RPM:             7200,
		TrackBytes:      1 << 20, // 1 MiB tracks
		SeekSettle:      500 * sim.Microsecond,
		SeekFullStroke:  16 * sim.Millisecond,
		MediaMBps:       110,
		QueueDepthMax:   32,
		ReadaheadWindow: 4 << 20,
	}
}

// HDD is a mechanistic single-spindle disk: one head, square-root seek
// curve, rotational positioning derived from the virtual clock, a
// shortest-positioning-time-first (SPTF) elevator over the device queue,
// and a track cache that streams sequential reads at media rate.
type HDD struct {
	env     *sim.Env
	cfg     HDDConfig
	name    string
	metrics *Metrics

	revTime     sim.Duration
	totalTracks int64

	busy      bool
	headTrack int64
	queue     []*hddRequest
	lastEnd   int64 // end offset of the previous request, for readahead
}

type hddRequest struct {
	offset    int64
	length    int
	submitted sim.Time
	done      *sim.Completion
}

// NewHDD returns a disk built from cfg, bound to e.
func NewHDD(e *sim.Env, cfg HDDConfig) *HDD {
	if cfg.Capacity <= 0 || cfg.TrackBytes <= 0 || cfg.RPM <= 0 || cfg.MediaMBps <= 0 {
		panic("device: invalid HDD config")
	}
	if cfg.QueueDepthMax <= 0 {
		cfg.QueueDepthMax = 1
	}
	return &HDD{
		env:         e,
		cfg:         cfg,
		name:        fmt.Sprintf("hdd-%drpm", cfg.RPM),
		metrics:     NewMetrics(e),
		revTime:     sim.Duration(60e9 / float64(cfg.RPM)),
		totalTracks: (cfg.Capacity + cfg.TrackBytes - 1) / cfg.TrackBytes,
		lastEnd:     -1,
	}
}

// Name implements Device.
func (d *HDD) Name() string { return d.name }

// Size implements Device.
func (d *HDD) Size() int64 { return d.cfg.Capacity }

// Metrics implements Device.
func (d *HDD) Metrics() *Metrics { return d.metrics }

// WriteAt implements Device. Spinning media pays the same mechanical costs
// writing as reading: the request joins the same elevator queue.
func (d *HDD) WriteAt(offset int64, length int) *sim.Completion {
	return d.ReadAt(offset, length)
}

// ReadAt implements Device.
func (d *HDD) ReadAt(offset int64, length int) *sim.Completion {
	validate(d, offset, length)
	r := &hddRequest{
		offset:    offset,
		length:    length,
		submitted: d.env.Now(),
		done:      sim.NewCompletion(d.env),
	}
	d.metrics.Submitted()
	d.queue = append(d.queue, r)
	if !d.busy {
		d.startNext()
	}
	return r.done
}

// track returns the track holding byte offset off.
func (d *HDD) track(off int64) int64 { return off / d.cfg.TrackBytes }

// seekTime returns the head movement time between two tracks.
func (d *HDD) seekTime(from, to int64) sim.Duration {
	if from == to {
		return 0
	}
	dist := from - to
	if dist < 0 {
		dist = -dist
	}
	frac := math.Sqrt(float64(dist) / float64(d.totalTracks))
	return d.cfg.SeekSettle + sim.Duration(float64(d.cfg.SeekFullStroke)*frac)
}

// rotWait returns how long the head waits, after arriving at the target
// track at time t, for the first byte of the request to rotate under it.
// The angular position is derived from the virtual clock, which makes the
// model deterministic without being degenerate.
func (d *HDD) rotWait(at sim.Time, offset int64) sim.Duration {
	angleNow := float64(int64(at)%int64(d.revTime)) / float64(d.revTime)
	target := float64(offset%d.cfg.TrackBytes) / float64(d.cfg.TrackBytes)
	delta := target - angleNow
	if delta < 0 {
		delta++
	}
	return sim.Duration(delta * float64(d.revTime))
}

// transferTime returns the media-rate transfer time for n bytes.
func (d *HDD) transferTime(n int) sim.Duration {
	return sim.Duration(float64(n) / d.cfg.MediaMBps * 1e3)
}

// schedulingCost ranks queued requests for the elevator by seek distance
// only (classic LOOK/SSTF). The firmware is given no rotational knowledge:
// deep queues shorten seeks but cannot defeat rotational latency, matching
// the paper's drive, whose queue-depth-32 random reads gain only ~2-2.5x —
// all of it attributable to seek optimization over wide bands.
func (d *HDD) schedulingCost(r *hddRequest) sim.Duration {
	if d.isSequential(r) {
		return 0
	}
	return d.seekTime(d.headTrack, d.track(r.offset))
}

// positioning returns the actual mechanical time (seek + rotation) to reach
// r starting now. Sequential hits on the track cache position for free.
func (d *HDD) positioning(r *hddRequest) sim.Duration {
	if d.isSequential(r) {
		return 0
	}
	seek := d.seekTime(d.headTrack, d.track(r.offset))
	return seek + d.rotWait(d.env.Now().Add(seek), r.offset)
}

func (d *HDD) isSequential(r *hddRequest) bool {
	return d.lastEnd >= 0 && r.offset == d.lastEnd &&
		r.offset-d.lastEnd < int64(d.cfg.ReadaheadWindow)
}

// startNext dispatches the queued request with the shortest seek (LOOK
// elevator) among the first QueueDepthMax entries. This is what makes HDD
// throughput improve modestly — and latency degrade — with queue depth.
func (d *HDD) startNext() {
	if len(d.queue) == 0 {
		d.busy = false
		return
	}
	d.busy = true
	window := len(d.queue)
	if window > d.cfg.QueueDepthMax {
		window = d.cfg.QueueDepthMax
	}
	best, bestCost := 0, d.schedulingCost(d.queue[0])
	for i := 1; i < window; i++ {
		if c := d.schedulingCost(d.queue[i]); c < bestCost {
			best, bestCost = i, c
		}
	}
	r := d.queue[best]
	d.queue = append(d.queue[:best], d.queue[best+1:]...)

	service := d.positioning(r) + d.transferTime(r.length)
	d.env.Schedule(service, func() {
		d.headTrack = d.track(r.offset + int64(r.length))
		d.lastEnd = r.offset + int64(r.length)
		d.metrics.Completed(r.length, sim.Duration(d.env.Now()-r.submitted))
		r.done.Fire()
		d.startNext()
	})
}
