package device

import (
	"fmt"
	"testing"

	"pioqo/internal/sim"
)

// benchReads drives dev with qd workers for b.N total 4 KiB random reads
// and reports host time per simulated I/O.
func benchReads(b *testing.B, newDev func(*sim.Env) Device, qd int) {
	env := sim.NewEnv(1)
	dev := newDev(env)
	pages := dev.Size() / page
	each := b.N/qd + 1
	for w := 0; w < qd; w++ {
		env.Go(fmt.Sprintf("w%d", w), func(p *sim.Proc) {
			for i := 0; i < each; i++ {
				off := env.Rand().Int63n(pages) * page
				p.Wait(dev.ReadAt(off, page))
			}
		})
	}
	b.ResetTimer()
	env.Run()
}

func BenchmarkSSDRandomReadQD1(b *testing.B)  { benchReads(b, newSSD, 1) }
func BenchmarkSSDRandomReadQD32(b *testing.B) { benchReads(b, newSSD, 32) }
func BenchmarkHDDRandomReadQD8(b *testing.B)  { benchReads(b, newHDD, 8) }
func BenchmarkRAIDRandomReadQD8(b *testing.B) { benchReads(b, newRAID8, 8) }

// BenchmarkSSDSequentialBlocks measures the chunked large-read path.
func BenchmarkSSDSequentialBlocks(b *testing.B) {
	env := sim.NewEnv(1)
	dev := newSSD(env)
	const block = 256 << 10
	blocks := dev.Size() / block
	env.Go("seq", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(dev.ReadAt(int64(i)%blocks*block, block))
		}
	})
	b.ResetTimer()
	env.Run()
}
