package opt

import (
	"math"
	"testing"

	"pioqo/internal/exec"
	"pioqo/internal/sim"
)

// TestChooseShardedMakespan: the scatter stage costs what its slowest
// shard costs (shards overlap on their own devices), rows sum, and the
// merge stage lands on CPU and total.
func TestChooseShardedMakespan(t *testing.T) {
	costs := exec.DefaultCPUCosts()
	cfg := Config{Costs: costs}
	plans := []Plan{
		{EstRows: 100, IOMicros: 50, CPUMicros: 10, TotalMicros: 60},
		{EstRows: 300, IOMicros: 200, CPUMicros: 30, TotalMicros: 230},
		{EstRows: 50, IOMicros: 20, CPUMicros: 40, TotalMicros: 55},
	}
	i := 0
	choose := func(Config, Input) Plan { p := plans[i]; i++; return p }
	sp := ChooseSharded(choose, []Config{cfg, cfg, cfg}, make([]Input, 3), MergeScalar, 0)

	if sp.EstRows != 450 {
		t.Errorf("EstRows = %v, want summed 450", sp.EstRows)
	}
	if sp.IOMicros != 200 {
		t.Errorf("IOMicros = %v, want max-shard 200", sp.IOMicros)
	}
	wantMerge := 3 * float64(costs.PerRow) / float64(sim.Microsecond)
	if math.Abs(sp.MergeMicros-wantMerge) > 1e-9 {
		t.Errorf("MergeMicros = %v, want %v (3 scalar partials)", sp.MergeMicros, wantMerge)
	}
	if math.Abs(sp.CPUMicros-(40+wantMerge)) > 1e-9 {
		t.Errorf("CPUMicros = %v, want max-shard 40 + merge %v", sp.CPUMicros, wantMerge)
	}
	if math.Abs(sp.TotalMicros-(230+wantMerge)) > 1e-9 {
		t.Errorf("TotalMicros = %v, want max-shard 230 + merge %v", sp.TotalMicros, wantMerge)
	}
	if len(sp.Shards) != 3 || sp.Shards[1].TotalMicros != 230 {
		t.Errorf("per-shard plans not preserved: %+v", sp.Shards)
	}
}

// TestMergePricingByKind: ordered merges scale with rows·log(shards),
// group merges with groups·shards — both must exceed the scalar fold's
// price for any non-trivial input.
func TestMergePricingByKind(t *testing.T) {
	cfg := Config{Costs: exec.DefaultCPUCosts()}
	one := func(Config, Input) Plan { return Plan{EstRows: 10000, TotalMicros: 100} }
	cfgs := []Config{cfg, cfg, cfg, cfg}
	ins := make([]Input, 4)

	scalar := ChooseSharded(one, cfgs, ins, MergeScalar, 0)
	ordered := ChooseSharded(one, cfgs, ins, MergeOrdered, 0)
	groups := ChooseSharded(one, cfgs, ins, MergeGroups, 500)

	if !(ordered.MergeMicros > scalar.MergeMicros) {
		t.Errorf("ordered merge %v not dearer than scalar %v", ordered.MergeMicros, scalar.MergeMicros)
	}
	if !(groups.MergeMicros > scalar.MergeMicros) {
		t.Errorf("group merge %v not dearer than scalar %v", groups.MergeMicros, scalar.MergeMicros)
	}
	perEntry := float64(cfg.Costs.PerEntry) / float64(sim.Microsecond)
	wantOrdered := 40000 * math.Log2(4) * perEntry
	if math.Abs(ordered.MergeMicros-wantOrdered) > 1e-6 {
		t.Errorf("ordered merge = %v, want rows·log2(shards)·perEntry = %v",
			ordered.MergeMicros, wantOrdered)
	}
	perRow := float64(cfg.Costs.PerRow) / float64(sim.Microsecond)
	if want := 500 * 4 * perRow; math.Abs(groups.MergeMicros-want) > 1e-6 {
		t.Errorf("group merge = %v, want groups·shards·perRow = %v", groups.MergeMicros, want)
	}
}
