package opt

import (
	"strings"
	"testing"

	"pioqo/internal/exec"
)

func TestEnumerateValidationPanics(t *testing.T) {
	f := newFixture(t, "ssd", 1000, 33)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil model", func(c *Config) { c.Model = nil }},
		{"zero cores", func(c *Config) { c.Model = f.qdtt; c.Cores = 0 }},
	}
	for _, c := range cases {
		cfg := f.cfg
		c.mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			Enumerate(cfg, f.in)
		}()
	}
}

func TestPlanStringVariants(t *testing.T) {
	cases := []struct {
		plan Plan
		want string
	}{
		{Plan{Method: exec.FullScan, Degree: 1}, "FTS "},
		{Plan{Method: exec.FullScan, Degree: 16}, "PFTS16 "},
		{Plan{Method: exec.SortedIndexScan, Degree: 2}, "PSortedIS2 "},
		{Plan{Method: exec.IndexScan, Degree: 8, Prefetch: 4}, "PIS8+pf4 "},
	}
	for _, c := range cases {
		if got := c.plan.String(); !strings.HasPrefix(got, c.want) {
			t.Errorf("String() = %q, want prefix %q", got, c.want)
		}
	}
}

func TestChooseJoinWithoutProbeIndexStaysHash(t *testing.T) {
	f := newFixture(t, "ssd", 20000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	in := f.in
	in.Lo, in.Hi = rangeFor(in.Table, 0.001)
	probe := in
	probe.Index = nil
	jp := ChooseJoin(cfg, in, probe)
	if jp.Method != exec.HashJoin {
		t.Errorf("join without probe index chose %v, want HashJoin", jp.Method)
	}
	if jp.TotalMicros <= 0 {
		t.Error("non-positive join cost")
	}
}

func TestChooseJoinRespectsQueueBudget(t *testing.T) {
	f := newFixture(t, "ssd", 20000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	cfg.QueueBudget = 4
	in := f.in
	in.Lo, in.Hi = rangeFor(in.Table, 0.001)
	jp := ChooseJoin(cfg, in, in)
	if jp.Build.Degree > 4 || jp.Probe.Degree > 4 {
		t.Errorf("join plan exceeds queue budget: build %d, probe %d",
			jp.Build.Degree, jp.Probe.Degree)
	}
}

func TestJoinPlanSpecsRoundTrip(t *testing.T) {
	f := newFixture(t, "ssd", 1000, 33)
	in := f.in
	in.Lo, in.Hi = 5, 50
	jp := JoinPlan{
		Method: exec.IndexNLJoin,
		Build:  Plan{Method: exec.FullScan, Degree: 2},
		Probe:  Plan{Method: exec.IndexScan, Degree: 8},
	}
	spec := jp.Specs(in, in, exec.AggSum)
	if spec.Method != exec.IndexNLJoin || spec.Agg != exec.AggSum {
		t.Errorf("spec lost method/agg: %+v", spec)
	}
	if spec.Build.Degree != 2 || spec.Probe.Degree != 8 {
		t.Errorf("spec lost degrees: build %d probe %d", spec.Build.Degree, spec.Probe.Degree)
	}
}

func TestMethodStringFallback(t *testing.T) {
	if got := exec.Method(42).String(); got != "Method(42)" {
		t.Errorf("fallback = %q", got)
	}
	if got := exec.AggKind(42).String(); got != "AggKind(42)" {
		t.Errorf("fallback = %q", got)
	}
}
