package opt

import (
	"math"
	"sync/atomic"
	"testing"

	"pioqo/internal/host"
)

func TestSelBand(t *testing.T) {
	cases := []struct {
		sel  float64
		band int
	}{
		{1.0, 0}, {0.75, 0}, {0.5, 1}, {0.3, 1}, {0.25, 2},
		{0.01, 6}, {1e-5, 16}, {0, emptyBand}, {-1, emptyBand},
		{math.SmallestNonzeroFloat64, emptyBand - 1}, {2, 0},
	}
	for _, c := range cases {
		if got := selBand(c.sel); got != c.band {
			t.Errorf("selBand(%g) = %d, want %d", c.sel, got, c.band)
		}
	}
	for _, band := range []int{0, 1, 6, 40} {
		lo, hi := bandEdges(band)
		if selBand(hi) != band {
			t.Errorf("band %d: hi edge %g maps to band %d", band, hi, selBand(hi))
		}
		if lo > 0 && selBand(lo) != band+1 {
			t.Errorf("band %d: lo edge %g maps to band %d, want %d (exclusive edge)",
				band, lo, selBand(lo), band+1)
		}
	}
}

// paramFixture returns a warm config+input pair for cache tests.
func paramFixture(t *testing.T) (Config, Input, *fixture) {
	t.Helper()
	f := newFixture(t, "ssd", 50000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	cfg.GridKey = GridKey(cfg.Degrees, cfg.PrefetchDepths)
	in := f.in
	in.Lo, in.Hi = rangeFor(in.Table, 0.01)
	return cfg, in, f
}

// TestParamCacheBindsConstantsWithinBand is the tentpole behaviour: queries
// with different constants but the same shape and selectivity band are
// served from one cached entry, each with its own cardinality estimate.
func TestParamCacheBindsConstantsWithinBand(t *testing.T) {
	cfg, in, f := paramFixture(t)
	// Deep index-scan territory, far from any crossover: band 9 covers
	// (0.098%, 0.195%].
	in.Lo, in.Hi = rangeFor(f.in.Table, 0.0015)
	pc := NewParamCache()

	first := pc.Choose(cfg, in)
	if s := pc.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("first lookup: %+v, want 1 miss", s)
	}

	// Same band, different constants.
	rows := float64(in.Table.Rows())
	for i, sel := range []float64{0.001, 0.0012, 0.0018} {
		q := in
		q.Lo, q.Hi = rangeFor(f.in.Table, sel)
		q.Lo += int64(i) // shift the window; width fixes the selectivity
		q.Hi += int64(i)
		got := pc.Choose(cfg, q)
		if got.Method != first.Method || got.Degree != first.Degree {
			t.Errorf("sel=%.4f: served %v, cached shape was %v", sel, got, first)
		}
		wantRows := selectivity(q, q.Lo, q.Hi) * rows
		if math.Abs(got.EstRows-wantRows) > 0.5 {
			t.Errorf("sel=%.4f: EstRows %.1f, want rebound %.1f", sel, got.EstRows, wantRows)
		}
	}
	if s := pc.Stats(); s.Misses != 1 || s.Hits != 3 {
		t.Errorf("after 3 same-band lookups: %+v, want 1 miss + 3 hits", s)
	}
}

func TestParamCacheSeparatesBandsAndShapes(t *testing.T) {
	cfg, in, f := paramFixture(t)
	pc := NewParamCache()

	// Distant bands are distinct entries.
	for _, sel := range []float64{0.01, 0.1, 0.0001} {
		q := in
		q.Lo, q.Hi = rangeFor(f.in.Table, sel)
		pc.Choose(cfg, q)
	}
	if s := pc.Stats(); s.Misses != 3 {
		t.Errorf("3 distant selectivities: %+v, want 3 misses", s)
	}
	if pc.Len() != 1 {
		t.Errorf("one shape expected, cache holds %d", pc.Len())
	}

	// A different grid is a different shape.
	gridCfg := cfg
	gridCfg.PrefetchDepths = []int{4, 16}
	gridCfg.GridKey = GridKey(gridCfg.Degrees, gridCfg.PrefetchDepths)
	pc.Choose(gridCfg, in)
	if pc.Len() != 2 {
		t.Errorf("second grid: cache holds %d shapes, want 2", pc.Len())
	}

	// So is a different queue budget (the broker's leased re-plans).
	leaseCfg := cfg
	leaseCfg.QueueBudget = 2
	if got := pc.Choose(leaseCfg, in); got.Degree > 2 {
		t.Errorf("budget 2 served degree %d", got.Degree)
	}
	if pc.Len() != 3 {
		t.Errorf("third shape: cache holds %d, want 3", pc.Len())
	}
}

func TestParamCacheRevalidatesOnEpochDrift(t *testing.T) {
	cfg, in, _ := paramFixture(t)
	pc := NewParamCache()
	pc.Choose(cfg, in)

	// Residency drift: warm 100 heap pages, bumping the pool epoch. The
	// memo would invalidate everything; the param cache re-prices only
	// winner vs. runner-up and keeps the entry when the winner survives.
	for p := int64(0); p < 100; p++ {
		in.Pool.Prefetch(in.Table.File(), p)
	}
	got := pc.Choose(cfg, in)
	s := pc.Stats()
	if s.Revalidations != 1 && s.Fallbacks < 1 {
		t.Fatalf("epoch drift neither revalidated nor re-enumerated: %+v", s)
	}
	// Whatever path it took, the served plan must match a fresh full
	// optimization at the current residency... up to the uncertainty
	// margin the cache is allowed to absorb.
	full := Choose(cfg, in)
	if got != full && got.TotalMicros/full.TotalMicros-1 > cfg.greedyMargin() {
		t.Errorf("after drift served %v, full optimization %v", got, full)
	}

	// A second lookup at the new epoch is a plain hit again.
	before := pc.Stats().Hits
	pc.Choose(cfg, in)
	if pc.Stats().Hits != before+1 {
		t.Errorf("post-drift lookup did not hit: %+v", pc.Stats())
	}
}

func TestParamCacheResetAndBound(t *testing.T) {
	cfg, in, _ := paramFixture(t)
	pc := NewParamCache()

	// Shape churn far past the cap: every queue budget is its own shape.
	for b := 1; b <= maxShapes+50; b++ {
		c := cfg
		c.QueueBudget = b
		pc.Choose(c, in)
	}
	if n := pc.Len(); n > maxShapes {
		t.Errorf("cache grew to %d shapes, cap is %d", n, maxShapes)
	}

	pc.Reset()
	if pc.Len() != 0 {
		t.Error("Reset left shapes behind")
	}
	if s := pc.Stats(); s != (CacheStats{}) {
		t.Errorf("Reset left counters: %+v", s)
	}
	if got := pc.Choose(cfg, in); got != Choose(cfg, in) &&
		got.TotalMicros/Choose(cfg, in).TotalMicros-1 > 0.05 {
		t.Error("post-Reset lookup served a bad plan")
	}
}

// TestParamCacheStableHitAllocs gates the serving hot path: a band-stable
// hit binds constants with zero heap allocations, and building a memo key
// with a precomputed GridKey allocates nothing either (the satellite fix
// for the fmt.Sprint-per-lookup regression).
func TestParamCacheStableHitAllocs(t *testing.T) {
	cfg, in, f := paramFixture(t)
	in.Lo, in.Hi = rangeFor(f.in.Table, 0.0015) // far from any crossover
	pc := NewParamCache()
	pc.Choose(cfg, in) // warm

	if s := pc.Stats(); s.Misses != 1 {
		t.Fatalf("warm-up: %+v", s)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		pc.Choose(cfg, in)
	}); allocs > 0 {
		t.Errorf("cached Choose allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		newMemoKey(cfg, in)
	}); allocs > 0 {
		t.Errorf("newMemoKey with precomputed GridKey allocates %.1f/op, want 0", allocs)
	}
}

// TestParamCacheConcurrentReaders drives one shared cache from host.Sweep
// workers — the race test behind the concurrent-reader tentpole claim (the
// opt package runs under -race in verify.sh). Obs and Log stay nil: those
// sinks are simulation-confined.
func TestParamCacheConcurrentReaders(t *testing.T) {
	cfg, in, f := paramFixture(t)
	pc := NewParamCache()

	sels := []float64{0.0001, 0.001, 0.01, 0.05, 0.3, 1.0}
	const lookups = 2000
	var served atomic.Int64
	host.Sweep(8, lookups, func(i int) {
		q := in
		q.Lo, q.Hi = rangeFor(f.in.Table, sels[i%len(sels)])
		q.Lo += int64(i % 7)
		q.Hi += int64(i % 7)
		p := pc.Choose(cfg, q)
		if p.TotalMicros <= 0 {
			t.Errorf("lookup %d served un-costed plan %v", i, p)
		}
		served.Add(1)
	})
	if served.Load() != lookups {
		t.Fatalf("served %d of %d lookups", served.Load(), lookups)
	}
	s := pc.Stats()
	if s.Hits+s.Misses+s.Fallbacks < lookups {
		t.Errorf("counters lost lookups: %+v", s)
	}
	if s.Hits < lookups/2 {
		t.Errorf("parameterized workload mostly missed: %+v", s)
	}
}
