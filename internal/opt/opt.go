// Package opt implements the cost-based access-path optimizer the paper
// evaluates: given the probe query's predicate range, it enumerates full
// table scans and index scans over a range of parallel degrees, prices each
// candidate's CPU and I/O, and picks the cheapest.
//
// The only difference between the paper's "old" and "new" optimizers is the
// I/O model plugged in: the old one prices page reads with DTT(band) —
// oblivious to queue depth, so parallelism can only ever help CPU — while
// the new one uses QDTT(band, degree) and discovers that a parallel index
// scan's random I/O becomes dramatically cheaper on devices with internal
// parallelism. Everything else (CPU model, page-count estimation, plan
// enumeration) is shared, isolating the paper's claim.
package opt

import (
	"fmt"
	"sort"

	"pioqo/internal/btree"
	"pioqo/internal/buffer"
	"pioqo/internal/cost"
	"pioqo/internal/exec"
	"pioqo/internal/obs"
	"pioqo/internal/obs/event"
	"pioqo/internal/stats"
	"pioqo/internal/table"
)

// Config fixes the optimizer's environment: the I/O cost model, the CPU
// cost constants (shared with the executor), and the machine shape.
type Config struct {
	// Model prices page I/O. A *cost.DTT here gives the paper's old
	// optimizer; a *cost.QDTT gives the new one.
	Model cost.Model

	// Costs are the per-operation CPU costs, identical to the executor's.
	Costs exec.CPUCosts

	// Cores is the number of logical cores; CPU work divides across at most
	// this many workers.
	Cores int

	// Degrees are the parallel degrees to enumerate. Empty means the
	// paper's 1, 2, 4, 8, 16, 32.
	Degrees []int

	// PoolPages is the buffer pool capacity, for page re-read estimation.
	PoolPages int64

	// EnableSortedScan adds the sorted index scan (an extension beyond the
	// paper's engine) to the enumeration.
	EnableSortedScan bool

	// PrefetchDepths, when non-empty, additionally enumerates per-worker
	// prefetch depths for index scans. A plan with degree d and prefetch n
	// generates a device queue depth of roughly d·n (§3.3: "the expected
	// peak queue depth is Mn"), which is what the QDTT model is asked to
	// price. This lets the optimizer discover that a few workers with deep
	// prefetch can replace a large worker fleet.
	PrefetchDepths []int

	// QueueBudget, when positive, caps the device queue depth any single
	// plan may generate — the §4.3 "concurrent queries" control: with n
	// queries active, each gets roughly 1/n of the device's beneficial
	// queue depth. Zero means uncapped.
	QueueBudget int

	// ShareParties, when ≥ 2, is the number of concurrent queries (this one
	// included) interested in a full scan of the same table. The enumeration
	// then adds a shared-scan candidate: attach to the table's circulating
	// scan, ride one lap, and split the producer's sequential device work
	// N ways — the attach path costs one lap of I/O over N, not a private
	// copy of the table. 0 or 1 means no sharing is available.
	ShareParties int

	// GreedyMargin is the relative cost margin the greedy fast path and the
	// parameterized cache treat as crossover-close: when the best plans of
	// two different access-path families price within this fraction of each
	// other, the serving path distrusts its shortcut and falls back to full
	// enumeration. 0 means the default (10%).
	GreedyMargin float64

	// GridKey, when non-empty, is the precomputed flattening of the
	// enumeration grid (see the GridKey function). Plan caches key on it;
	// leaving it empty makes every lookup rebuild — and allocate — the
	// string from Degrees and PrefetchDepths.
	GridKey string

	// Obs, when set, receives optimizer counters (opt.optimizations,
	// opt.plans_enumerated) for engine-wide observability.
	Obs *obs.Registry

	// Log, when set, receives plan-cache hit/miss events from the memo.
	// Excluded from the memo key: logging never changes what is cached.
	Log *event.Log
}

func (c Config) degrees() []int {
	if len(c.Degrees) > 0 {
		return c.Degrees
	}
	return []int{1, 2, 4, 8, 16, 32}
}

// SnapDegree snaps a model-predicted degree onto the enumeration grid: the
// largest grid degree not above d, or the smallest grid entry when d sits
// below the whole grid. Adaptive seeding uses it so a seeded plan always
// names a degree the optimizer could itself have chosen — plan caches and
// cost attribution stay on-grid. The same defaulting as Config applies.
func SnapDegree(degrees []int, d int) int {
	grid := Config{Degrees: degrees}.degrees()
	best := grid[0]
	for _, g := range grid {
		if g <= d && g > best {
			best = g
		}
	}
	return best
}

// GridKey flattens an enumeration grid — degrees and prefetch depths, with
// the same defaulting as Config — into the string the plan caches key on.
// Compute it once when the Config's grid is fixed and store it in
// Config.GridKey to keep cache lookups allocation-free.
func GridKey(degrees, prefetchDepths []int) string {
	return fmt.Sprint(Config{Degrees: degrees}.degrees(), prefetchDepths)
}

func (c Config) gridKey() string {
	if c.GridKey != "" {
		return c.GridKey
	}
	return fmt.Sprint(c.degrees(), c.PrefetchDepths)
}

// Input is one optimization request: the table, its C2 index, the live
// buffer pool (consulted for residency statistics, as SQL Anywhere does),
// optional column statistics, and the predicate range.
type Input struct {
	Table table.Table
	Index *btree.Index
	Pool  *buffer.Pool

	// Stats, when present, supplies histogram-based cardinality estimates;
	// otherwise the estimator assumes C2 is uniform over its domain (exact
	// for the paper's workloads).
	Stats *stats.Histogram

	Lo,
	Hi int64
}

// Plan is a costed access-path candidate.
type Plan struct {
	Method exec.Method
	Degree int
	// Prefetch is the per-worker prefetch depth for index scans (0 when
	// prefetch planning is disabled).
	Prefetch int

	// Shared marks the circulating-scan attach path: the query rides the
	// table's shared producer instead of scanning privately, so its device
	// cost is one lap split over the attached parties.
	Shared bool

	// EstRows is the estimated number of matching rows.
	EstRows float64
	// EstPageIO is the estimated number of page reads.
	EstPageIO float64
	// IOMicros and CPUMicros are the estimated component times; TotalMicros
	// is the plan cost the optimizer ranks by.
	IOMicros    float64
	CPUMicros   float64
	TotalMicros float64
}

func (p Plan) String() string {
	name := p.Method.String()
	if p.Degree > 1 {
		name = "P" + name + fmt.Sprint(p.Degree)
	}
	if p.Prefetch > 0 {
		name += fmt.Sprintf("+pf%d", p.Prefetch)
	}
	if p.Shared {
		name += "+shared"
	}
	return fmt.Sprintf("%s cost=%.0fus (io=%.0fus cpu=%.0fus rows=%.0f pages=%.0f)",
		name, p.TotalMicros, p.IOMicros, p.CPUMicros, p.EstRows, p.EstPageIO)
}

// Spec converts the chosen plan into an executable scan spec.
func (p Plan) Spec(in Input) exec.Spec {
	return exec.Spec{
		Table:             in.Table,
		Index:             in.Index,
		Lo:                in.Lo,
		Hi:                in.Hi,
		Method:            p.Method,
		Degree:            p.Degree,
		PrefetchPerWorker: p.Prefetch,
		Shared:            p.Shared,
	}
}

// Choose returns the cheapest plan for the input.
func Choose(cfg Config, in Input) Plan {
	plans := Enumerate(cfg, in)
	best := plans[0]
	for _, p := range plans[1:] {
		if p.TotalMicros < best.TotalMicros {
			best = p
		}
	}
	return best
}

// Enumerate returns every candidate plan, cheapest first — the optimizer's
// "explain" view.
func Enumerate(cfg Config, in Input) []Plan {
	if cfg.Model == nil {
		panic("opt: Config.Model is nil")
	}
	if cfg.Cores <= 0 {
		panic("opt: Config.Cores must be positive")
	}
	cc := newCosting(in)
	var plans []Plan
	// The shared candidate goes first: when a CPU-bound shared lap ties a
	// serial private scan on total cost, the stable sort keeps the shared
	// plan ahead — at equal price, riding the circulation frees the device
	// for everyone else.
	if cfg.ShareParties >= 2 {
		plans = append(plans, costSharedScan(cfg, in, cc))
	}
	for _, d := range cfg.degrees() {
		if cfg.QueueBudget > 0 && d > cfg.QueueBudget && d > 1 {
			continue
		}
		plans = append(plans, costFullScan(cfg, in, cc, d))
		if in.Index == nil {
			continue
		}
		plans = append(plans, costIndexScan(cfg, in, cc, d, 0))
		for _, pf := range cfg.PrefetchDepths {
			if pf > 0 {
				plans = append(plans, costIndexScan(cfg, in, cc, d, pf))
			}
		}
		if cfg.EnableSortedScan {
			plans = append(plans, costSortedScan(cfg, in, cc, d))
		}
	}
	if len(plans) == 0 {
		// A queue budget below every degree still permits serial plans.
		plans = append(plans, costFullScan(cfg, in, cc, 1))
		if in.Index != nil {
			plans = append(plans, costIndexScan(cfg, in, cc, 1, 0))
		}
	}
	sort.SliceStable(plans, func(i, j int) bool {
		return plans[i].TotalMicros < plans[j].TotalMicros
	})
	if cfg.Obs != nil {
		cfg.Obs.Counter(obs.MetricOptOptimizations).Inc()
		cfg.Obs.Counter(obs.MetricOptPlansEnumerated).Add(int64(len(plans)))
	}
	return plans
}

// costing is the per-Input context shared by every candidate of one
// Enumerate call: the estimated matching-row count and the heap file's
// pool-resident fraction. Both are pure functions of the input, yet were
// previously recomputed — selectivity walking the histogram, residency
// consulting the pool — for each of |degrees| × |methods| × |prefetch|
// candidates. The cost formulas consume the hoisted values through the
// same expressions as before, so every plan cost is bit-identical.
type costing struct {
	matched  float64 // estimated rows matched by [Lo, Hi]
	resident float64 // fraction of the heap file already pooled; 0 without a pool
}

func newCosting(in Input) costing {
	cc := costing{
		matched: selectivity(in, in.Lo, in.Hi) * float64(in.Table.Rows()),
	}
	if in.Pool != nil {
		cc.resident = residentFraction(in.Pool, in.Table.File(), in.Pool.Resident(in.Table.File()))
	}
	return cc
}

// selectivity estimates the fraction of rows matched by [lo, hi]: from the
// histogram when one is supplied, else under the uniform-distribution
// assumption.
func selectivity(in Input, lo, hi int64) float64 {
	if in.Stats != nil {
		return in.Stats.Selectivity(lo, hi)
	}
	d := in.Table.KeyDomain()
	if hi >= d {
		hi = d - 1
	}
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		return 0
	}
	return float64(hi-lo+1) / float64(d)
}

// residentFraction reports how much of a file the pool already caches.
func residentFraction(pool *buffer.Pool, file interface{ Pages() int64 }, resident int64) float64 {
	if pool == nil || file.Pages() == 0 {
		return 0
	}
	f := float64(resident) / float64(file.Pages())
	if f > 1 {
		f = 1
	}
	return f
}

// costFullScan prices FTS/PFTS with degree d. The scan reads the whole heap
// sequentially (band 1 in DTT terms); its CPU evaluates every row. I/O and
// CPU overlap through prefetching, so the runtime estimate is their max,
// plus per-worker startup.
func costFullScan(cfg Config, in Input, cc costing, d int) Plan {
	t := in.Table
	pages := float64(t.Pages())
	rows := float64(t.Rows())
	matched := cc.matched

	pageIO := pages * (1 - cc.resident)
	io := pageIO * cfg.Model.PageCost(1, d)

	workers := d
	if workers > cfg.Cores {
		workers = cfg.Cores
	}
	cpu := (pages*float64(cfg.Costs.PerPage.Micros()) +
		rows*float64(cfg.Costs.PerRow.Micros())) / float64(workers)
	startup := 0.0
	if d > 1 {
		startup = float64(d) * cfg.Costs.WorkerStartup.Micros()
	}

	total := maxf(io, cpu) + startup
	return Plan{
		Method: exec.FullScan, Degree: d,
		EstRows: matched, EstPageIO: pageIO,
		IOMicros: io, CPUMicros: cpu + startup, TotalMicros: total,
	}
}

// costSharedScan prices attaching to the table's circulating scan with
// ShareParties riders. The producer reads the whole heap sequentially once
// per lap at its own readahead depth, so each rider's share of the device
// work is one lap over N — and it needs no queue-depth credits of its own.
// The rider's CPU is serial: it consumes pushed batches on one process,
// evaluating every row, exactly like a degree-1 full scan. No worker
// startup: attaching is a registry append, not a fleet spawn.
func costSharedScan(cfg Config, in Input, cc costing) Plan {
	t := in.Table
	pages := float64(t.Pages())
	rows := float64(t.Rows())

	pageIO := pages * (1 - cc.resident)
	io := pageIO * cfg.Model.PageCost(1, 1) / float64(cfg.ShareParties)

	cpu := pages*float64(cfg.Costs.PerPage.Micros()) +
		rows*float64(cfg.Costs.PerRow.Micros())

	return Plan{
		Method: exec.FullScan, Degree: 1, Shared: true,
		EstRows: cc.matched, EstPageIO: pageIO / float64(cfg.ShareParties),
		IOMicros: io, CPUMicros: cpu, TotalMicros: maxf(io, cpu),
	}
}

// costIndexScan prices IS/PIS with degree d and per-worker prefetch depth
// pf (0 disables prefetching). The scan reads the qualifying index leaves
// plus one heap page per matching row, random within the heap extent
// (band = heap pages). Its device queue depth — the quantity QDTT prices
// and DTT ignores — is the degree alone without prefetching, and
// approximately degree × prefetch with it (§3.3's "expected peak queue
// depth is Mn").
func costIndexScan(cfg Config, in Input, cc costing, d, pf int) Plan {
	t := in.Table
	x := in.Index
	matched := cc.matched
	k := int64(matched + 0.5)

	leafPages := matched/float64(x.LeafCap()) + 1
	descent := float64(x.Height() - 1)

	pool := cfg.PoolPages
	// Leaf pages and the scan's own re-visited heap pages compete for the
	// pool; ignore that second-order effect and use the configured size.
	heapFetches := cost.ExpectedFetches(k, t.Pages(), t.RowsPerPage(), pool)
	if in.Pool != nil {
		heapFetches *= 1 - cc.resident
	}

	depth := d
	if pf > 0 {
		depth = d * pf
	}
	if cfg.QueueBudget > 0 && depth > cfg.QueueBudget {
		depth = cfg.QueueBudget
	}
	pageIO := heapFetches + leafPages + descent
	band := t.Pages()
	io := pageIO * cfg.Model.PageCost(band, depth)

	workers := d
	if workers > cfg.Cores {
		workers = cfg.Cores
	}
	cpu := (leafPages*(cfg.Costs.PerPage.Micros()+float64(x.LeafCap())*cfg.Costs.PerEntry.Micros()) +
		matched*cfg.Costs.PerRowFetch.Micros()) / float64(workers)
	if pf > 0 {
		cpu += heapFetches * cfg.Costs.PerPrefetch.Micros() / float64(workers)
	}
	startup := 0.0
	if d > 1 {
		startup = float64(d) * cfg.Costs.WorkerStartup.Micros()
	}

	total := maxf(io, cpu) + startup
	return Plan{
		Method: exec.IndexScan, Degree: d, Prefetch: pf,
		EstRows: matched, EstPageIO: pageIO,
		IOMicros: io, CPUMicros: cpu + startup, TotalMicros: total,
	}
}

// costSortedScan prices the sorted index scan extension: like an index
// scan, but each distinct heap page is fetched at most once (no pool
// re-reads), at the price of collecting and sorting the row-id list.
func costSortedScan(cfg Config, in Input, cc costing, d int) Plan {
	t := in.Table
	x := in.Index
	matched := cc.matched
	k := int64(matched + 0.5)

	leafPages := matched/float64(x.LeafCap()) + 1
	descent := float64(x.Height() - 1)
	heapFetches := cost.YaoDistinctPages(k, t.Pages(), t.RowsPerPage())
	if in.Pool != nil {
		heapFetches *= 1 - cc.resident
	}

	depth := d
	if cfg.QueueBudget > 0 && depth > cfg.QueueBudget {
		depth = cfg.QueueBudget
	}
	pageIO := heapFetches + leafPages + descent
	io := pageIO * cfg.Model.PageCost(t.Pages(), depth)

	workers := d
	if workers > cfg.Cores {
		workers = cfg.Cores
	}
	cpu := (leafPages*(cfg.Costs.PerPage.Micros()+float64(x.LeafCap())*cfg.Costs.PerEntry.Micros()) +
		matched*cfg.Costs.PerRowFetch.Micros()) / float64(workers)
	// The sort stage runs serially on the driver.
	cpu += 2 * matched * cfg.Costs.PerEntry.Micros()
	startup := 0.0
	if d > 1 {
		startup = float64(d) * cfg.Costs.WorkerStartup.Micros()
	}

	total := maxf(io, cpu) + startup
	return Plan{
		Method: exec.SortedIndexScan, Degree: d,
		EstRows: matched, EstPageIO: pageIO,
		IOMicros: io, CPUMicros: cpu + startup, TotalMicros: total,
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
