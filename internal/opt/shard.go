package opt

import (
	"math"

	"pioqo/internal/sim"
)

// Scatter-gather planning: a sharded query fans one scan out over N
// shards, each planned independently — its own access path, degree, and
// prefetch depth, priced under that shard's device band (the shard
// table's own page count), pool capacity, and queue-depth lease budget —
// and a merge stage folds the per-shard partials. The shards run on
// separate simulated devices, so the plan's cost is a makespan: the most
// expensive shard's cost, plus the coordinator's merge work.

// MergeKind names the gather operator's merge stage, which is what the
// merge cost is priced for.
type MergeKind int

const (
	// MergeScalar folds one decomposable scalar partial per shard
	// (MAX/MIN/COUNT/SUM): O(shards).
	MergeScalar MergeKind = iota
	// MergeOrdered interleaves per-shard index-order row streams into one
	// globally ordered stream: O(rows · log shards).
	MergeOrdered
	// MergeGroups folds per-shard group hash tables: O(groups · shards).
	MergeGroups
)

// ShardPlan is a costed scatter-gather plan: one independently chosen plan
// per shard plus the merge stage.
type ShardPlan struct {
	// Shards holds the per-shard plans, parallel to the cfgs/ins given to
	// ChooseSharded — only the shards that survived pruning are passed in.
	Shards []Plan

	// EstRows is the summed per-shard row estimate.
	EstRows float64

	// MergeMicros is the merge stage's estimated CPU cost.
	MergeMicros float64

	// TotalMicros is the scatter-gather makespan estimate: the most
	// expensive shard plus the merge. IOMicros/CPUMicros follow the same
	// max-shard convention.
	IOMicros, CPUMicros, TotalMicros float64
}

// ChooseSharded plans each shard with choose (the caller's memo- or
// band-cached Choose) and prices the merge stage. cfgs[i] must carry shard
// i's band-local sizing: its pool capacity and its split of the query's
// queue-depth lease budget. groups sizes the MergeGroups hash (ignored for
// the other kinds).
func ChooseSharded(choose func(Config, Input) Plan, cfgs []Config, ins []Input,
	merge MergeKind, groups float64) ShardPlan {
	if len(cfgs) != len(ins) || len(cfgs) == 0 {
		panic("opt: ChooseSharded with mismatched or empty shard inputs")
	}
	sp := ShardPlan{Shards: make([]Plan, len(cfgs))}
	for i := range cfgs {
		p := choose(cfgs[i], ins[i])
		sp.Shards[i] = p
		sp.EstRows += p.EstRows
		// Shards overlap in virtual time on their own devices: the
		// scatter stage costs what its slowest shard costs.
		sp.IOMicros = math.Max(sp.IOMicros, p.IOMicros)
		sp.CPUMicros = math.Max(sp.CPUMicros, p.CPUMicros)
		sp.TotalMicros = math.Max(sp.TotalMicros, p.TotalMicros)
	}
	sp.MergeMicros = mergeMicros(cfgs[0], merge, len(cfgs), sp.EstRows, groups)
	sp.CPUMicros += sp.MergeMicros
	sp.TotalMicros += sp.MergeMicros
	return sp
}

// mergeMicros prices the gather merge stage with the executor's own CPU
// cost constants, in microseconds.
func mergeMicros(cfg Config, merge MergeKind, shards int, rows, groups float64) float64 {
	perRow := float64(cfg.Costs.PerRow) / float64(sim.Microsecond)
	perEntry := float64(cfg.Costs.PerEntry) / float64(sim.Microsecond)
	switch merge {
	case MergeOrdered:
		return rows * math.Log2(math.Max(2, float64(shards))) * perEntry
	case MergeGroups:
		return math.Max(groups, 1) * float64(shards) * perRow
	default:
		return float64(shards) * perRow
	}
}
