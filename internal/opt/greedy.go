// Greedy O(n) access-path selection. Full enumeration prices every
// (method × degree × prefetch) candidate — O(n·m) costings per query — which
// a serving tier re-planning the same query shape millions of times cannot
// afford. The greedy fast path prices O(n) candidates instead: every degree
// still competes, but the prefetch dimension is collapsed through a
// precomputed crossover table (for each degree, the prefetch depth whose
// combined queue depth minimizes the model's page cost — the device's
// beneficial depth, discovered once per shape instead of once per query).
//
// Greedy is allowed to be wrong only where being wrong is cheap: when the
// best candidates of two different access-path families price within an
// uncertainty margin of each other — the estimated selectivity lands near a
// plan crossover, exactly where estimation noise flips winners — the fast
// path distrusts itself and falls back to the full enumeration.
package opt

import "pioqo/internal/exec"

// defaultGreedyMargin is the relative cost margin within which two plan
// families are considered crossover-close, triggering fallback to full
// enumeration. See Config.GreedyMargin.
const defaultGreedyMargin = 0.10

func (c Config) greedyMargin() float64 {
	if c.GreedyMargin > 0 {
		return c.GreedyMargin
	}
	return defaultGreedyMargin
}

// crossover is the precomputed per-shape table collapsing the prefetch
// dimension: prefetch[i] is the depth from Config.PrefetchDepths that
// minimizes the model's page cost for an index scan at degrees()[i]
// (0 when no configured depth beats unprefetched I/O). It depends only on
// the cost model, the heap band, the queue budget, and the enumeration
// grid — never on the predicate — so one table serves every query of a
// shape.
type crossover struct {
	prefetch []int
}

// computeCrossover builds the crossover table for one shape: an O(n·m)
// sweep of the model's page-cost surface, paid once per shape and then
// amortized over every query that binds into it.
func computeCrossover(cfg Config, band int64) *crossover {
	degs := cfg.degrees()
	cx := &crossover{prefetch: make([]int, len(degs))}
	for i, d := range degs {
		best, bestCost := 0, cfg.Model.PageCost(band, capDepth(cfg, d))
		for _, pf := range cfg.PrefetchDepths {
			if pf <= 0 {
				continue
			}
			if c := cfg.Model.PageCost(band, capDepth(cfg, d*pf)); c < bestCost {
				best, bestCost = pf, c
			}
		}
		cx.prefetch[i] = best
	}
	return cx
}

// capDepth applies the queue budget to a plan's generated device depth,
// mirroring costIndexScan's clamp.
func capDepth(cfg Config, depth int) int {
	if cfg.QueueBudget > 0 && depth > cfg.QueueBudget {
		return cfg.QueueBudget
	}
	return depth
}

// family buckets a plan into its access-path family. The greedy margin is
// measured between families, not within one: two adjacent degrees of the
// same method pricing close together is normal hill-flatness, while two
// families pricing close together is a crossover — the regime where greedy
// ordering picks wrong plans.
func family(p Plan) int {
	switch {
	case p.Shared:
		return 0
	case p.Method == exec.IndexScan:
		return 1
	case p.Method == exec.SortedIndexScan:
		return 2
	default:
		return 3 // private full scan
	}
}

// top2 tracks the cheapest plan seen and the cheapest plan from any *other*
// family — the crossover competitor the cache revalidates against. Strict
// comparison keeps the first of equals, matching Enumerate's stable sort.
type top2 struct {
	winner, runner Plan
	n              int
	hasRunner      bool
}

func (t *top2) add(p Plan) {
	t.n++
	if t.n == 1 {
		t.winner = p
		return
	}
	if p.TotalMicros < t.winner.TotalMicros {
		if family(t.winner) != family(p) {
			t.runner, t.hasRunner = t.winner, true
		}
		t.winner = p
		return
	}
	if family(p) == family(t.winner) {
		return
	}
	if !t.hasRunner || p.TotalMicros < t.runner.TotalMicros {
		t.runner, t.hasRunner = p, true
	}
}

// pickTop extracts the winner and its cross-family runner-up from a
// cost-sorted enumeration.
func pickTop(plans []Plan) top2 {
	var t top2
	for _, p := range plans {
		t.add(p)
	}
	return t
}

// greedyPlan prices the O(n) greedy candidate set — every degree's full
// scan, unprefetched index scan, and crossover-prefetched index scan (plus
// the sorted and shared variants when enabled) — and returns the winner and
// its cross-family runner-up. When the two land within the configured
// margin of each other the estimate sits on a crossover: greedyPlan falls
// back to the full enumeration and reports fellBack, so callers can meter
// the fast-path rate.
func greedyPlan(cfg Config, in Input, cc costing, cx *crossover) (t top2, fellBack bool) {
	degs := cfg.degrees()
	if cfg.ShareParties >= 2 {
		t.add(costSharedScan(cfg, in, cc))
	}
	for i, d := range degs {
		if cfg.QueueBudget > 0 && d > cfg.QueueBudget && d > 1 {
			continue
		}
		t.add(costFullScan(cfg, in, cc, d))
		if in.Index == nil {
			continue
		}
		t.add(costIndexScan(cfg, in, cc, d, 0))
		if pf := cx.prefetch[i]; pf > 0 {
			t.add(costIndexScan(cfg, in, cc, d, pf))
		}
		if cfg.EnableSortedScan {
			t.add(costSortedScan(cfg, in, cc, d))
		}
	}
	if t.n == 0 {
		// A queue budget below every degree still permits serial plans,
		// exactly as in Enumerate.
		t.add(costFullScan(cfg, in, cc, 1))
		if in.Index != nil {
			t.add(costIndexScan(cfg, in, cc, 1, 0))
		}
	}
	if t.hasRunner &&
		t.runner.TotalMicros-t.winner.TotalMicros <= cfg.greedyMargin()*t.winner.TotalMicros {
		return pickTop(Enumerate(cfg, in)), true
	}
	t.winner = canonPrefetch(cfg, in, cc, t.winner)
	return t, false
}

// canonPrefetch aligns a greedy index-scan winner with Enumerate's
// tie-break. The crossover table picks the depth minimizing page cost, but
// a CPU-bound plan prices identically at every I/O-saturating depth, and
// Enumerate's stable sort keeps the earliest tying candidate — the
// shallowest depth in grid order. On a tie, serve that plan, so the fast
// path returns the full enumeration's winner bit-for-bit.
func canonPrefetch(cfg Config, in Input, cc costing, w Plan) Plan {
	if w.Method != exec.IndexScan || w.Prefetch == 0 || w.Shared {
		return w
	}
	for _, pf := range cfg.PrefetchDepths {
		if pf == w.Prefetch {
			break
		}
		if pf <= 0 {
			continue
		}
		if p := costIndexScan(cfg, in, cc, w.Degree, pf); p.TotalMicros == w.TotalMicros {
			return p
		}
	}
	return w
}

// costShape re-prices one known plan shape at the given costing — the
// constant-binding step: a cached shape from an earlier query in the band
// gets this query's selectivity and the pool's current residency, without
// re-enumerating anything.
func costShape(cfg Config, in Input, cc costing, p Plan) Plan {
	switch {
	case p.Shared:
		return costSharedScan(cfg, in, cc)
	case p.Method == exec.SortedIndexScan:
		return costSortedScan(cfg, in, cc, p.Degree)
	case p.Method == exec.IndexScan:
		return costIndexScan(cfg, in, cc, p.Degree, p.Prefetch)
	default:
		return costFullScan(cfg, in, cc, p.Degree)
	}
}

// GreedyChoose picks a plan through the greedy fast path alone — no cache —
// reporting whether it fell back to full enumeration. The quality harness
// (experiments.PlanBench) drives it point-by-point against Choose to
// measure agreement and regret across the selectivity × device grid.
func GreedyChoose(cfg Config, in Input) (Plan, bool) {
	if cfg.Model == nil {
		panic("opt: Config.Model is nil")
	}
	if cfg.Cores <= 0 {
		panic("opt: Config.Cores must be positive")
	}
	t, fell := greedyPlan(cfg, in, newCosting(in), computeCrossover(cfg, in.Table.Pages()))
	return t.winner, fell
}
