package opt

import (
	"testing"

	"pioqo/internal/exec"
)

func TestSortedScanEnumeratedOnlyWhenEnabled(t *testing.T) {
	f := newFixture(t, "ssd", 50000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	in := f.in
	in.Lo, in.Hi = rangeFor(in.Table, 0.05)

	for _, p := range Enumerate(cfg, in) {
		if p.Method == exec.SortedIndexScan {
			t.Fatal("sorted scan enumerated without EnableSortedScan")
		}
	}
	cfg.EnableSortedScan = true
	found := false
	for _, p := range Enumerate(cfg, in) {
		if p.Method == exec.SortedIndexScan {
			found = true
		}
	}
	if !found {
		t.Fatal("sorted scan missing with EnableSortedScan")
	}
}

func TestSortedScanWinsUnderTinyPool(t *testing.T) {
	// With a pool far smaller than the table and selectivity high enough
	// that a plain index scan would re-read pages massively, the sorted
	// scan's fetch-each-page-once property should make it the winner over
	// the plain index scan.
	f := newFixture(t, "ssd", 200000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	cfg.PoolPages = 128
	cfg.EnableSortedScan = true
	in := f.in
	in.Lo, in.Hi = rangeFor(in.Table, 0.02)

	var sorted, plain *Plan
	for _, p := range Enumerate(cfg, in) {
		p := p
		if p.Degree != 32 {
			continue
		}
		switch p.Method {
		case exec.SortedIndexScan:
			if sorted == nil {
				sorted = &p
			}
		case exec.IndexScan:
			if plain == nil && p.Prefetch == 0 {
				plain = &p
			}
		}
	}
	if sorted == nil || plain == nil {
		t.Fatal("missing candidates")
	}
	if sorted.TotalMicros >= plain.TotalMicros {
		t.Errorf("sorted scan (%v) not cheaper than thrashing plain scan (%v)",
			*sorted, *plain)
	}
}

func TestPrefetchPlanningPrefersFewerWorkers(t *testing.T) {
	// With prefetch planning on, a low-degree deep-prefetch index scan
	// should cost no more than the 32-worker no-prefetch plan: the queue
	// depth is the same and the worker startup overhead is lower.
	f := newFixture(t, "ssd", 200000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	cfg.PrefetchDepths = []int{8, 32}
	in := f.in
	in.Lo, in.Hi = rangeFor(in.Table, 0.001)

	best := Choose(cfg, in)
	if best.Method != exec.IndexScan {
		t.Fatalf("best plan %v, want an index scan", best)
	}
	if best.Prefetch == 0 {
		t.Errorf("best plan %v has no prefetch despite planning enabled", best)
	}
	if best.Degree >= 32 {
		t.Errorf("best plan %v uses a full worker fleet; prefetch should replace workers", best)
	}
}

func TestQueueBudgetCapsDegreesAndDepth(t *testing.T) {
	f := newFixture(t, "ssd", 100000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	cfg.QueueBudget = 8
	in := f.in
	in.Lo, in.Hi = rangeFor(in.Table, 0.001)

	plans := Enumerate(cfg, in)
	for _, p := range plans {
		if p.Degree > 8 {
			t.Errorf("plan %v exceeds queue budget 8", p)
		}
	}
	// Budgeted IS cost must be no cheaper than the unbudgeted equivalent
	// degree-8 plan (same depth) and the unbudgeted 32-deep plan must be
	// cheaper than the budgeted best.
	cfgFree := cfg
	cfgFree.QueueBudget = 0
	free := Choose(cfgFree, in)
	budgeted := Choose(cfg, in)
	if free.TotalMicros > budgeted.TotalMicros {
		t.Errorf("unbudgeted best (%v) costs more than budgeted best (%v)", free, budgeted)
	}
}

func TestQueueBudgetBelowAllDegreesStillPlans(t *testing.T) {
	f := newFixture(t, "ssd", 10000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	cfg.QueueBudget = 1
	cfg.Degrees = []int{2, 4, 8} // none admissible
	in := f.in
	in.Lo, in.Hi = rangeFor(in.Table, 0.01)
	plans := Enumerate(cfg, in)
	if len(plans) == 0 {
		t.Fatal("no plans under a tight queue budget")
	}
	for _, p := range plans {
		if p.Degree != 1 {
			t.Errorf("plan %v not serial under budget 1", p)
		}
	}
}

func TestPrefetchPlanSpecCarriesPrefetch(t *testing.T) {
	f := newFixture(t, "ssd", 10000, 33)
	in := f.in
	p := Plan{Method: exec.IndexScan, Degree: 4, Prefetch: 16}
	spec := p.Spec(in)
	if spec.PrefetchPerWorker != 16 || spec.Degree != 4 {
		t.Errorf("spec %+v lost prefetch/degree", spec)
	}
}

func TestPlanStringWithPrefetch(t *testing.T) {
	p := Plan{Method: exec.IndexScan, Degree: 4, Prefetch: 16}
	if got := p.String(); got[:10] != "PIS4+pf16 " {
		t.Errorf("String() = %q", got)
	}
}
