// Plan memoization. Probe-query optimization is pure: for a fixed cost
// model, machine shape, predicate range, and pool residency the enumeration
// always prices the same candidates to the same costs. Engines re-optimize
// the same parameterized probe constantly (the paper's sweeps re-plan every
// selectivity × device × concurrency point), so the memo caches the ranked
// plan list and replays it until something the costs depend on changes.
//
// Residency is the only input that moves behind the optimizer's back; the
// memo keys on the pool's epoch — a counter the pool bumps on every install
// and eviction — so any residency change invalidates automatically without
// the memo subscribing to pool traffic.
package opt

import (
	"pioqo/internal/btree"
	"pioqo/internal/buffer"
	"pioqo/internal/cost"
	"pioqo/internal/obs"
	"pioqo/internal/obs/event"
	"pioqo/internal/stats"
	"pioqo/internal/table"
)

// memoKey captures every Enumerate input a plan's cost can depend on.
// Object-valued fields (table, index, stats, pool, model) key on identity:
// the engine owns these for a catalog's lifetime, and a rebuilt object may
// legitimately carry different contents.
type memoKey struct {
	table table.Table
	index *btree.Index
	stats *stats.Histogram
	pool  *buffer.Pool
	lo    int64
	hi    int64

	// epoch pins the pool residency the cached costs were computed from;
	// 0 when the input carries no pool.
	epoch uint64

	model        cost.Model
	cores        int
	poolPages    int64
	sorted       bool
	queueBudget  int
	shareParties int

	// grid flattens the enumeration's shape — degrees and prefetch depths —
	// so configs enumerating different candidate sets never collide.
	grid string
}

func newMemoKey(cfg Config, in Input) memoKey {
	k := memoKey{
		table:        in.Table,
		index:        in.Index,
		stats:        in.Stats,
		pool:         in.Pool,
		lo:           in.Lo,
		hi:           in.Hi,
		model:        cfg.Model,
		cores:        cfg.Cores,
		poolPages:    cfg.PoolPages,
		sorted:       cfg.EnableSortedScan,
		queueBudget:  cfg.QueueBudget,
		shareParties: cfg.ShareParties,
		grid:         cfg.gridKey(),
	}
	if in.Pool != nil {
		k.epoch = in.Pool.Epoch()
	}
	return k
}

// Memo caches Enumerate results keyed on everything the costs depend on.
// It is not safe for concurrent use — optimization happens on the
// simulation driver, which is single-threaded.
type Memo struct {
	entries map[memoKey][]Plan
	hits    int64
	misses  int64
}

// NewMemo returns an empty plan memo.
func NewMemo() *Memo {
	return &Memo{entries: make(map[memoKey][]Plan)}
}

// Enumerate returns the ranked candidate list for the input, computing it
// on first sight and replaying it afterwards. The returned slice is a fresh
// copy either way — callers may reorder or mutate it freely.
func (m *Memo) Enumerate(cfg Config, in Input) []Plan {
	key := newMemoKey(cfg, in)
	if cached, ok := m.entries[key]; ok {
		m.hits++
		if cfg.Obs != nil {
			// Replays count as optimizations: per-query observability diffs
			// must not depend on whether the memo happened to be warm.
			cfg.Obs.Counter(obs.MetricOptOptimizations).Inc()
			cfg.Obs.Counter(obs.MetricOptPlansEnumerated).Add(int64(len(cached)))
			cfg.Obs.Counter(obs.MetricOptMemoHits).Inc()
		}
		cfg.Log.Emit(event.EvPlanCacheHit, event.NoQuery, int64(len(cached)), 0)
		return append([]Plan(nil), cached...)
	}
	m.misses++
	plans := Enumerate(cfg, in)
	if cfg.Obs != nil {
		cfg.Obs.Counter(obs.MetricOptMemoMisses).Inc()
	}
	cfg.Log.Emit(event.EvPlanCacheMiss, event.NoQuery, int64(len(plans)), 0)
	m.bound()
	m.entries[key] = append([]Plan(nil), plans...)
	return plans
}

// memoMaxEntries bounds the memo. Entries keyed on a superseded pool epoch
// can never hit again — every pool install or eviction strands the whole
// epoch — so a long-running engine would otherwise grow the map without
// limit, one enumeration per residency change.
const memoMaxEntries = 1024

// bound keeps the memo under memoMaxEntries before an install: first sweep
// entries pinned to dead pool epochs (predicate-driven, so the surviving
// set is independent of map iteration order), then — if live entries alone
// exceed the cap — drop everything. Never evict an arbitrary entry: that
// would make hit/miss streams depend on map iteration order and break
// byte-identical replay.
func (m *Memo) bound() {
	if len(m.entries) < memoMaxEntries {
		return
	}
	for k := range m.entries {
		if k.pool != nil && k.epoch != k.pool.Epoch() {
			delete(m.entries, k)
		}
	}
	if len(m.entries) >= memoMaxEntries {
		m.entries = make(map[memoKey][]Plan)
	}
}

// Choose returns the cheapest plan for the input through the memo.
func (m *Memo) Choose(cfg Config, in Input) Plan {
	plans := m.Enumerate(cfg, in)
	best := plans[0]
	for _, p := range plans[1:] {
		if p.TotalMicros < best.TotalMicros {
			best = p
		}
	}
	return best
}

// Stats reports how many lookups replayed a cached enumeration and how
// many priced one fresh.
func (m *Memo) Stats() (hits, misses int64) { return m.hits, m.misses }

// Len reports how many enumerations are currently cached.
func (m *Memo) Len() int { return len(m.entries) }

// Reset drops every cached enumeration and zeroes the counters. Callers
// must invalidate this way when a keyed object mutates in place — above
// all when a calibration swaps the cost model's contents.
func (m *Memo) Reset() {
	m.entries = make(map[memoKey][]Plan)
	m.hits, m.misses = 0, 0
}
