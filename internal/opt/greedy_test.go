package opt

import (
	"testing"

	"pioqo/internal/cost"
	"pioqo/internal/exec"
)

// selPoints is the selectivity grid the greedy-vs-full quality tests sweep:
// geometric from 0.001% to 100%, dense enough to cross every plan regime.
func selPoints() []float64 {
	var out []float64
	for sel := 1e-5; sel <= 1.0; sel *= 1.5 {
		out = append(out, sel)
	}
	return append(out, 1.0)
}

// TestGreedyMatchesFullEnumeration is the quality gate behind the serving
// fast path: across the selectivity × device grid the greedy choice must be
// the full enumeration's winner on ≥ 95% of points, and cost within 5% of
// it everywhere (the acceptance margins; planbench measures the same thing
// at experiment scale).
func TestGreedyMatchesFullEnumeration(t *testing.T) {
	for _, dev := range []string{"ssd", "hdd"} {
		f := newFixture(t, dev, 200000, 33)
		for _, prefetch := range [][]int{nil, {2, 4, 8, 16, 32}} {
			cfg := f.cfg
			cfg.Model = f.qdtt
			cfg.PrefetchDepths = prefetch
			var points, agree int
			for _, sel := range selPoints() {
				in := f.in
				in.Lo, in.Hi = rangeFor(f.in.Table, sel)
				full := Choose(cfg, in)
				greedy, _ := GreedyChoose(cfg, in)
				points++
				if greedy == full {
					agree++
					continue
				}
				if regret := greedy.TotalMicros/full.TotalMicros - 1; regret > 0.05 {
					t.Errorf("%s pf=%v sel=%.5f: greedy %v regrets %.1f%% vs full %v",
						dev, prefetch, sel, greedy, regret*100, full)
				}
			}
			if agree*100 < points*95 {
				t.Errorf("%s pf=%v: greedy agreed on %d/%d points, want >= 95%%",
					dev, prefetch, agree, points)
			}
		}
	}
}

// TestGreedyFallsBackAtBreakEven pins the fallback trigger: at the
// index-scan/full-scan break-even selectivity the two families price within
// the margin, so the fast path must fall back to full enumeration — and
// therefore return exactly its winner.
func TestGreedyFallsBackAtBreakEven(t *testing.T) {
	f := newFixture(t, "ssd", 200000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	be := f.breakEven(t, f.qdtt)

	in := f.in
	in.Lo, in.Hi = rangeFor(f.in.Table, be)
	greedy, fell := GreedyChoose(cfg, in)
	if !fell {
		t.Fatalf("sel=%.5f (break-even): greedy did not fall back", be)
	}
	if full := Choose(cfg, in); greedy != full {
		t.Errorf("fallback chose %v, full enumeration chose %v", greedy, full)
	}

	// Far from the crossover the fast path should trust itself.
	in.Lo, in.Hi = rangeFor(f.in.Table, be/100)
	if _, fell := GreedyChoose(cfg, in); fell {
		t.Errorf("sel=%.6f (well below break-even): greedy fell back", be/100)
	}
}

// TestCrossoverPrefetchIsArgmin checks the precomputed table against a
// brute-force sweep of the model's page-cost surface.
func TestCrossoverPrefetchIsArgmin(t *testing.T) {
	f := newFixture(t, "ssd", 200000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	cfg.PrefetchDepths = []int{2, 4, 8, 16, 32}
	cfg.QueueBudget = 24
	band := f.in.Table.Pages()

	cx := computeCrossover(cfg, band)
	for i, d := range cfg.degrees() {
		best, bestCost := 0, cfg.Model.PageCost(band, capDepth(cfg, d))
		for _, pf := range cfg.PrefetchDepths {
			if c := cfg.Model.PageCost(band, capDepth(cfg, d*pf)); c < bestCost {
				best, bestCost = pf, c
			}
		}
		if cx.prefetch[i] != best {
			t.Errorf("degree %d: crossover prefetch %d, brute force %d", d, cx.prefetch[i], best)
		}
	}
}

// TestGreedySharedCandidate mirrors TestSharedScanCandidate on the fast
// path: in the one-credit fair-share regime a full-table scan with live
// parties must ride the circulating scan.
func TestGreedySharedCandidate(t *testing.T) {
	f := newFixture(t, "ssd", 60000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	cfg.ShareParties = 8
	cfg.QueueBudget = 1
	in := f.in
	in.Lo, in.Hi = rangeFor(f.in.Table, 1.0)

	best, _ := GreedyChoose(cfg, in)
	if !best.Shared {
		t.Errorf("greedy chose %v, want the shared plan", best)
	}
	if full := Choose(cfg, in); best != full {
		t.Errorf("greedy %v != full %v", best, full)
	}
}

// TestGreedyQueueBudgetSerialFallback mirrors Enumerate's guarantee that a
// queue budget below every enumerable degree still yields serial plans.
func TestGreedyQueueBudgetSerialFallback(t *testing.T) {
	f := newFixture(t, "ssd", 50000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	cfg.Degrees = []int{4, 8}
	cfg.QueueBudget = 2
	in := f.in
	in.Lo, in.Hi = rangeFor(f.in.Table, 0.01)

	best, _ := GreedyChoose(cfg, in)
	if best.Degree != 1 {
		t.Errorf("budget below every degree: greedy chose degree %d, want 1", best.Degree)
	}
	if full := Choose(cfg, in); best != full {
		t.Errorf("greedy %v != full %v", best, full)
	}
}

// TestGreedyDepthObliviousModel runs the fast path under the DTT model: a
// depth-oblivious surface makes every prefetch pointless, and the old
// optimizer's preference for serial index scans must survive the shortcut.
func TestGreedyDepthObliviousModel(t *testing.T) {
	f := newFixture(t, "ssd", 200000, 33)
	cfg := f.cfg
	var model cost.Model = f.dtt
	cfg.Model = model
	in := f.in
	in.Lo, in.Hi = rangeFor(f.in.Table, 0.001)
	best, _ := GreedyChoose(cfg, in)
	if best.Method != exec.IndexScan || best.Degree != 1 {
		t.Errorf("DTT greedy chose %v, want serial IndexScan", best)
	}
}
