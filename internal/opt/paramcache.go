// Parameterized plan cache. The Memo keys on exact predicate constants and
// the exact pool epoch, so a serving tier re-planning one query *shape*
// millions of times with different constants gets a near-zero hit rate.
// The ParamCache keys on the shape alone — table/index/stats/model/machine/
// enumeration grid — and buckets the predicate's estimated selectivity into
// logarithmic bands: band b holds every query whose selectivity falls in
// (2^-(b+1), 2^-b]. Within a band the access-path choice is almost always
// the same; only the cardinality estimate moves. Constants are bound at
// lookup time: a hit re-prices nothing when the entry is band-stable, or at
// most the cached winner and its cross-family runner-up when it is not.
//
// Residency drift is handled the same way: instead of the memo's
// epoch-exact invalidate-everything, an epoch mismatch re-costs just the
// winner and runner-up at the current residency and keeps the entry when
// the winner still wins by more than the uncertainty margin — full
// re-enumeration happens only when the ranking actually flips or lands on
// a crossover.
//
// The cache is safe for concurrent readers and writers: host.Sweep workers
// and ExecuteConcurrent sessions share one instance. Entries are immutable
// once published (updates swap an atomic pointer), so the hot hit path is
// lock-free. Config.Obs and Config.Log are NOT thread-safe — concurrent
// callers must leave them nil; the single-threaded engine driver sets them.
package opt

import (
	"math"
	"sync"
	"sync/atomic"

	"pioqo/internal/btree"
	"pioqo/internal/buffer"
	"pioqo/internal/cost"
	"pioqo/internal/obs"
	"pioqo/internal/obs/event"
	"pioqo/internal/stats"
	"pioqo/internal/table"
)

// emptyBand is the sentinel band for zero-selectivity predicates; real
// bands are 0..emptyBand-1, so a bandSet holds emptyBand+1 slots.
const emptyBand = 63

// maxShapes bounds the number of cached query shapes. Shapes are few (one
// per table × plan-option combination), so hitting the cap means shape
// churn — objects being rebuilt — and the whole map is dropped
// deterministically rather than evicting in map-iteration order.
const maxShapes = 256

// selBand buckets an estimated selectivity into its logarithmic band:
// floor(-log2(sel)), clamped to [0, emptyBand-1], with emptyBand reserved
// for sel ≤ 0.
func selBand(sel float64) int {
	if sel <= 0 {
		return emptyBand
	}
	if sel >= 1 {
		return 0
	}
	b := int(math.Floor(-math.Log2(sel)))
	if b < 0 {
		b = 0
	}
	if b >= emptyBand {
		b = emptyBand - 1
	}
	return b
}

// bandEdges returns the band's selectivity extremes — the probe points for
// the stability test. Band b covers (2^-(b+1), 2^-b].
func bandEdges(band int) (lo, hi float64) {
	if band >= emptyBand {
		return 0, 0
	}
	hi = math.Pow(2, -float64(band))
	return hi / 2, hi
}

// shapeKey is a memoKey minus the constants: no lo/hi, no epoch. Everything
// left is fixed for a query shape's lifetime; object-valued fields key on
// identity exactly as in the memo. The margin is included because both the
// fallback decision and entry stability depend on it.
type shapeKey struct {
	table table.Table
	index *btree.Index
	stats *stats.Histogram
	pool  *buffer.Pool

	model        cost.Model
	cores        int
	poolPages    int64
	sorted       bool
	queueBudget  int
	shareParties int
	margin       float64
	grid         string
}

func newShapeKey(cfg Config, in Input) shapeKey {
	return shapeKey{
		table:        in.Table,
		index:        in.Index,
		stats:        in.Stats,
		pool:         in.Pool,
		model:        cfg.Model,
		cores:        cfg.Cores,
		poolPages:    cfg.PoolPages,
		sorted:       cfg.EnableSortedScan,
		queueBudget:  cfg.QueueBudget,
		shareParties: cfg.ShareParties,
		margin:       cfg.greedyMargin(),
		grid:         cfg.gridKey(),
	}
}

// bandEntry is one band's cached decision. Immutable after publication.
type bandEntry struct {
	winner Plan
	// runner is the cheapest plan from a different access-path family —
	// the crossover competitor revalidation re-prices against. A shape
	// with a single family (no index, no sharing) has none.
	runner    Plan
	hasRunner bool

	// epoch pins the pool residency the entry was priced at.
	epoch uint64

	// stable means the winner beats the runner by more than the margin at
	// BOTH selectivity edges of the band (at the entry's residency), so a
	// same-epoch hit can skip re-pricing entirely.
	stable bool
}

// bandSet is one shape's cache line: a crossover table shared by every
// band, plus one slot per selectivity band. Slots hold immutable entries
// behind atomic pointers, making lookups lock-free.
type bandSet struct {
	cross atomic.Pointer[crossover]
	slots [emptyBand + 1]atomic.Pointer[bandEntry]
}

func (s *bandSet) crossoverFor(cfg Config, in Input) *crossover {
	if cx := s.cross.Load(); cx != nil {
		return cx
	}
	cx := computeCrossover(cfg, in.Table.Pages())
	s.cross.Store(cx)
	return cx
}

// lastShape is a one-entry front cache: serving workloads hammer a single
// shape, and comparing one struct beats hashing it into the map.
type lastShape struct {
	key shapeKey
	set *bandSet
}

// ParamCache is the concurrent parameterized plan cache. The zero value is
// not usable; call NewParamCache.
type ParamCache struct {
	mu     sync.RWMutex
	shapes map[shapeKey]*bandSet
	last   atomic.Pointer[lastShape]

	hits          atomic.Int64
	misses        atomic.Int64
	revalidations atomic.Int64
	greedyPlans   atomic.Int64
	fallbacks     atomic.Int64
}

// NewParamCache returns an empty parameterized plan cache.
func NewParamCache() *ParamCache {
	return &ParamCache{shapes: make(map[shapeKey]*bandSet)}
}

// CacheStats is a snapshot of the cache's internal counters.
type CacheStats struct {
	// Hits served a query from a cached band entry: the stable O(1) path
	// or a winner/runner re-pricing that confirmed the cached winner.
	Hits int64
	// Misses saw a shape × band combination for the first time.
	Misses int64
	// Revalidations are hits that crossed a pool-epoch drift: the entry
	// was re-priced at the new residency and survived.
	Revalidations int64
	// GreedyPlans are misses the greedy fast path decided alone.
	GreedyPlans int64
	// Fallbacks are full enumerations forced by a crossover: a greedy
	// margin trip on miss, or a cached ranking that flipped on rebind.
	Fallbacks int64
}

// Stats snapshots the counters. Safe for concurrent use.
func (pc *ParamCache) Stats() CacheStats {
	return CacheStats{
		Hits:          pc.hits.Load(),
		Misses:        pc.misses.Load(),
		Revalidations: pc.revalidations.Load(),
		GreedyPlans:   pc.greedyPlans.Load(),
		Fallbacks:     pc.fallbacks.Load(),
	}
}

// Len reports how many query shapes are currently cached.
func (pc *ParamCache) Len() int {
	pc.mu.RLock()
	defer pc.mu.RUnlock()
	return len(pc.shapes)
}

// Reset drops every cached shape and zeroes the counters. Required when a
// keyed object mutates in place — above all when calibration swaps the
// cost model's contents.
func (pc *ParamCache) Reset() {
	pc.mu.Lock()
	pc.shapes = make(map[shapeKey]*bandSet)
	pc.mu.Unlock()
	pc.last.Store(nil)
	pc.hits.Store(0)
	pc.misses.Store(0)
	pc.revalidations.Store(0)
	pc.greedyPlans.Store(0)
	pc.fallbacks.Store(0)
}

// bandSetFor resolves the shape's cache line, creating it on first sight.
// The one-entry front cache makes the steady-state path a struct compare;
// the map is consulted — and, at the cap, deterministically dropped whole —
// only on shape changes.
func (pc *ParamCache) bandSetFor(key shapeKey) *bandSet {
	if ls := pc.last.Load(); ls != nil && ls.key == key {
		return ls.set
	}
	pc.mu.RLock()
	set, ok := pc.shapes[key]
	pc.mu.RUnlock()
	if !ok {
		pc.mu.Lock()
		if set, ok = pc.shapes[key]; !ok {
			if len(pc.shapes) >= maxShapes {
				pc.shapes = make(map[shapeKey]*bandSet)
			}
			set = &bandSet{}
			pc.shapes[key] = set
		}
		pc.mu.Unlock()
	}
	pc.last.Store(&lastShape{key: key, set: set})
	return set
}

// bindCosting builds the costing context for this query's actual constants:
// the estimated matched rows at the given selectivity and the pool's
// current residency.
func bindCosting(in Input, sel float64) costing {
	cc := costing{matched: sel * float64(in.Table.Rows())}
	if in.Pool != nil {
		cc.resident = residentFraction(in.Pool, in.Table.File(), in.Pool.Resident(in.Table.File()))
	}
	return cc
}

// wins reports whether w beats r by more than the margin — the condition
// under which the cache trusts a cached ranking without re-enumerating.
func wins(w, r Plan, margin float64) bool {
	return w.TotalMicros < r.TotalMicros &&
		r.TotalMicros-w.TotalMicros > margin*w.TotalMicros
}

// stableInBand probes the entry at both selectivity edges of its band (at
// the given residency): when the winner beats the runner by more than the
// margin at both extremes, same-epoch hits inside the band skip re-pricing.
// Edge probing is a heuristic — cost curves could in principle cross twice
// inside a band — but the planbench quality gate measures the realized
// agreement directly.
func stableInBand(cfg Config, in Input, band int, resident float64, e *bandEntry) bool {
	if !e.hasRunner {
		// Single-family shape: with residency pinned by the epoch check,
		// re-pricing within the band cannot change the family, and the
		// winner's degree was chosen at this band's costs.
		return true
	}
	lo, hi := bandEdges(band)
	rows := float64(in.Table.Rows())
	margin := cfg.greedyMargin()
	for _, sel := range [2]float64{lo, hi} {
		cc := costing{matched: sel * rows, resident: resident}
		if !wins(costShape(cfg, in, cc, e.winner), costShape(cfg, in, cc, e.runner), margin) {
			return false
		}
	}
	return true
}

// publish installs a freshly decided entry for the band, computing its
// stability at the current residency.
func (pc *ParamCache) publish(cfg Config, in Input, set *bandSet, band int, epoch uint64, resident float64, t top2) {
	e := &bandEntry{winner: t.winner, runner: t.runner, hasRunner: t.hasRunner, epoch: epoch}
	e.stable = stableInBand(cfg, in, band, resident, e)
	set.slots[band].Store(e)
}

// Choose returns the cheapest plan for the input through the parameterized
// cache: band hit → bind constants into the cached winner (O(1) when the
// entry is band-stable, winner-vs-runner re-pricing otherwise); band miss →
// greedy fast path with crossover fallback. Safe for concurrent use when
// cfg.Obs and cfg.Log are nil.
func (pc *ParamCache) Choose(cfg Config, in Input) Plan {
	if cfg.Model == nil {
		panic("opt: Config.Model is nil")
	}
	if cfg.Cores <= 0 {
		panic("opt: Config.Cores must be positive")
	}
	sel := selectivity(in, in.Lo, in.Hi)
	band := selBand(sel)
	set := pc.bandSetFor(newShapeKey(cfg, in))
	var epoch uint64
	if in.Pool != nil {
		epoch = in.Pool.Epoch()
	}

	if e := set.slots[band].Load(); e != nil {
		if e.stable && e.epoch == epoch {
			// Band-stable at unchanged residency: the cached shape wins
			// anywhere in the band. Rebind only the cardinality estimate.
			pc.hits.Add(1)
			if cfg.Obs != nil {
				cfg.Obs.Counter(obs.MetricOptOptimizations).Inc()
				cfg.Obs.Counter(obs.MetricOptBandHits).Inc()
			}
			cfg.Log.Emit(event.EvPlanBandHit, event.NoQuery, int64(band), 1)
			w := e.winner
			w.EstRows = sel * float64(in.Table.Rows())
			return w
		}
		cc := bindCosting(in, sel)
		w := costShape(cfg, in, cc, e.winner)
		confirmed := false
		var r Plan
		if e.hasRunner {
			r = costShape(cfg, in, cc, e.runner)
			confirmed = wins(w, r, cfg.greedyMargin())
		} else {
			// Single-family shape: only residency can move the choice, and
			// the epoch check covers that.
			confirmed = e.epoch == epoch
		}
		if confirmed {
			pc.hits.Add(1)
			if e.epoch != epoch {
				// Band-tolerant revalidation: residency drifted, but the
				// winner still wins outside the margin — keep the shape,
				// re-pin the epoch.
				pc.revalidations.Add(1)
				ne := &bandEntry{winner: w, runner: r, hasRunner: e.hasRunner, epoch: epoch}
				ne.stable = stableInBand(cfg, in, band, cc.resident, ne)
				set.slots[band].Store(ne)
				if cfg.Obs != nil {
					cfg.Obs.Counter(obs.MetricOptOptimizations).Inc()
					cfg.Obs.Counter(obs.MetricOptBandRevalidations).Inc()
				}
				cfg.Log.Emit(event.EvPlanRevalidate, event.NoQuery, int64(band), 1)
			} else {
				if cfg.Obs != nil {
					cfg.Obs.Counter(obs.MetricOptOptimizations).Inc()
					cfg.Obs.Counter(obs.MetricOptBandHits).Inc()
				}
				cfg.Log.Emit(event.EvPlanBandHit, event.NoQuery, int64(band), 0)
			}
			return w
		}
		// The cached ranking flipped or landed inside the margin: this
		// query sits on a crossover, so pay for the full enumeration.
		// (Enumerate counts the optimization itself.)
		pc.fallbacks.Add(1)
		if e.epoch != epoch {
			cfg.Log.Emit(event.EvPlanRevalidate, event.NoQuery, int64(band), 0)
		}
		t := pickTop(Enumerate(cfg, in))
		if cfg.Obs != nil {
			cfg.Obs.Counter(obs.MetricOptGreedyFallbacks).Inc()
		}
		cfg.Log.Emit(event.EvGreedyFallback, event.NoQuery, int64(band), int64(t.n))
		pc.publish(cfg, in, set, band, epoch, cc.resident, t)
		return t.winner
	}

	// First sight of this shape × band: decide through the greedy fast
	// path, falling back to full enumeration near crossovers.
	pc.misses.Add(1)
	if cfg.Obs != nil {
		cfg.Obs.Counter(obs.MetricOptBandMisses).Inc()
	}
	cfg.Log.Emit(event.EvPlanBandMiss, event.NoQuery, int64(band), 0)
	cc := bindCosting(in, sel)
	t, fell := greedyPlan(cfg, in, cc, set.crossoverFor(cfg, in))
	if fell {
		pc.fallbacks.Add(1)
		if cfg.Obs != nil {
			cfg.Obs.Counter(obs.MetricOptGreedyFallbacks).Inc()
		}
		cfg.Log.Emit(event.EvGreedyFallback, event.NoQuery, int64(band), int64(t.n))
	} else {
		pc.greedyPlans.Add(1)
		if cfg.Obs != nil {
			cfg.Obs.Counter(obs.MetricOptOptimizations).Inc()
			cfg.Obs.Counter(obs.MetricOptGreedyPlans).Inc()
		}
		cfg.Log.Emit(event.EvGreedyPlan, event.NoQuery, int64(band), int64(t.n))
	}
	pc.publish(cfg, in, set, band, epoch, cc.resident, t)
	return t.winner
}
