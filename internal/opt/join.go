package opt

import "pioqo/internal/exec"

// JoinPlan is a costed join plan: the algorithm plus one access path per
// side. For an index nested-loop join, Probe carries the lookup degree
// rather than a scan plan.
type JoinPlan struct {
	Method exec.JoinMethod
	Build  Plan
	Probe  Plan
	// TotalMicros is the estimated join cost.
	TotalMicros float64
}

// ChooseJoin picks the join algorithm and the access paths for both sides.
// The phases run back to back, so each side is optimized with the device's
// full queue depth — per phase this is exactly the single-table problem the
// paper solves; the join-level decisions (hash vs index nested-loop, and
// each side's method and degree) all fall out of the same QDTT-priced
// costs. The probe input's range should already match the build range.
func ChooseJoin(cfg Config, build, probe Input) JoinPlan {
	b := Choose(cfg, build)

	// Hash join: scan the probe range, hash every row.
	hashProbe := Choose(cfg, probe)
	hashCost := b.TotalMicros + hashProbe.TotalMicros +
		b.EstRows*0.2 + hashProbe.EstRows*0.15
	best := JoinPlan{
		Method: exec.HashJoin, Build: b, Probe: hashProbe, TotalMicros: hashCost,
	}

	// Index nested-loop join: one probe-index lookup per build key. Only
	// available when the probe side has an index.
	if probe.Index != nil {
		keys := b.EstRows // ≈ distinct keys when the domain is wide
		if build.Stats != nil {
			// Skewed build sides repeat keys; the NL join looks each
			// distinct key up once.
			keys *= build.Stats.DistinctRatio()
		}
		rowsPerKey := float64(probe.Table.Rows()) / float64(probe.Table.KeyDomain())
		// The executor probes the keys in ascending order, so consecutive
		// lookups mostly hit the same (pooled) leaf page: leaf I/O is
		// bounded by the leaves spanning the probed key range, not by the
		// key count.
		rangeFrac := selectivity(probe, build.Lo, build.Hi)
		leafFetches := rangeFrac * float64(probe.Index.Leaves())
		if leafFetches > keys {
			leafFetches = keys
		}
		for _, d := range cfg.degrees() {
			if cfg.QueueBudget > 0 && d > cfg.QueueBudget && d > 1 {
				continue
			}
			depth := d
			if cfg.QueueBudget > 0 && depth > cfg.QueueBudget {
				depth = cfg.QueueBudget
			}
			io := (keys*rowsPerKey + leafFetches) * cfg.Model.PageCost(probe.Table.Pages(), depth)
			workers := d
			if workers > cfg.Cores {
				workers = cfg.Cores
			}
			cpu := keys * (cfg.Costs.PerPage.Micros() +
				rowsPerKey*cfg.Costs.PerRowFetch.Micros()) / float64(workers)
			startup := 0.0
			if d > 1 {
				startup = float64(d) * cfg.Costs.WorkerStartup.Micros()
			}
			total := b.TotalMicros + maxf(io, cpu) + startup + keys*0.2
			if total < best.TotalMicros {
				best = JoinPlan{
					Method: exec.IndexNLJoin,
					Build:  b,
					Probe: Plan{
						Method: exec.IndexScan, Degree: d,
						EstRows: keys * rowsPerKey, EstPageIO: keys*rowsPerKey + leafFetches,
						IOMicros: io, CPUMicros: cpu + startup, TotalMicros: maxf(io, cpu) + startup,
					},
					TotalMicros: total,
				}
			}
		}
	}
	return best
}

// Specs converts the join plan into the executor's JoinSpec.
func (jp JoinPlan) Specs(build, probe Input, agg exec.AggKind) exec.JoinSpec {
	return exec.JoinSpec{
		Method: jp.Method,
		Build:  jp.Build.Spec(build),
		Probe:  jp.Probe.Spec(probe),
		Agg:    agg,
	}
}
