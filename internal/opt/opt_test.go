package opt

import (
	"math"
	"testing"

	"pioqo/internal/btree"
	"pioqo/internal/buffer"
	"pioqo/internal/calibrate"
	"pioqo/internal/cost"
	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/exec"
	"pioqo/internal/sim"
	"pioqo/internal/table"
)

// fixture bundles a table+index over a device with calibrated models.
type fixture struct {
	in   Input
	qdtt *cost.QDTT
	dtt  *cost.DTT
	cfg  Config // with Model unset; tests plug in dtt or qdtt
}

func newFixture(t *testing.T, devKind string, rows int64, rpp int) *fixture {
	t.Helper()
	env := sim.NewEnv(11)
	var dev device.Device
	if devKind == "hdd" {
		dev = device.NewHDD(env, device.DefaultHDDConfig())
	} else {
		dev = device.NewSSD(env, device.DefaultSSDConfig())
	}
	// Calibrate on a dedicated environment sharing the device model.
	ccfg := calibrate.DefaultConfig(dev)
	ccfg.MaxReads = 800
	ccfg.Bands = []int64{1, 256, 64 << 10, dev.Size() / disk.PageSize}
	out := calibrate.Run(env, dev, ccfg)

	m := disk.NewManager(dev)
	tab := table.NewSynthetic(m, "t", rows, rpp, 5)
	idx := btree.NewSynthetic(m, tab, 0, 0)
	pool := buffer.NewPool(env, 2048)
	return &fixture{
		in:   Input{Table: tab, Index: idx, Pool: pool},
		qdtt: out.Model,
		dtt:  out.Model.DepthOne(),
		cfg: Config{
			Costs:     exec.DefaultCPUCosts(),
			Cores:     8,
			PoolPages: 2048,
		},
	}
}

// rangeFor returns a predicate covering fraction sel of the key domain.
func rangeFor(tab table.Table, sel float64) (int64, int64) {
	hi := int64(sel*float64(tab.KeyDomain())) - 1
	if hi < 0 {
		hi = 0
	}
	return 0, hi
}

func (f *fixture) choose(t *testing.T, model cost.Model, sel float64) Plan {
	t.Helper()
	cfg := f.cfg
	cfg.Model = model
	in := f.in
	in.Lo, in.Hi = rangeFor(f.in.Table, sel)
	return Choose(cfg, in)
}

func TestOldOptimizerNeverParallelizesIndexScans(t *testing.T) {
	// §4.3: under DTT, I/O-dominated plans gain nothing from parallelism,
	// so the old optimizer never picks a parallel index scan — parallel I/O
	// is the *only* thing PIS buys (its CPU work is negligible), and DTT
	// cannot see it. (Unlike the paper's engine, our honest CPU model does
	// let the old optimizer pick low-degree PFTS in the CPU-bound full-scan
	// region; see DESIGN.md, Known deviations.)
	f := newFixture(t, "ssd", 200000, 33)
	cfg := f.cfg
	cfg.Model = f.dtt
	for _, sel := range []float64{0.0001, 0.001, 0.01, 0.1, 0.5} {
		in := f.in
		in.Lo, in.Hi = rangeFor(f.in.Table, sel)
		for _, p := range Enumerate(cfg, in) {
			if p.Method == exec.IndexScan && p.Degree > 1 {
				best := Choose(cfg, in)
				if best.Method == exec.IndexScan && best.Degree > 1 {
					t.Errorf("sel=%.4f: old optimizer chose %v", sel, best)
				}
			}
		}
	}
	// And in the I/O-bound region it chooses the plain non-parallel IS.
	p := f.choose(t, f.dtt, 0.001)
	if p.Method != exec.IndexScan || p.Degree != 1 {
		t.Errorf("sel=0.1%%: old optimizer chose %v, want IS degree 1", p)
	}
}

func TestNewOptimizerPicksParallelIndexScanOnSSD(t *testing.T) {
	f := newFixture(t, "ssd", 200000, 33)
	p := f.choose(t, f.qdtt, 0.001)
	if p.Method != exec.IndexScan {
		t.Fatalf("sel=0.1%%: chose %v, want IndexScan", p.Method)
	}
	if p.Degree < 16 {
		t.Errorf("sel=0.1%%: chose degree %d, want high (>=16)", p.Degree)
	}
}

func TestNewOptimizerPicksFullScanAtHighSelectivity(t *testing.T) {
	f := newFixture(t, "ssd", 200000, 33)
	p := f.choose(t, f.qdtt, 0.5)
	if p.Method != exec.FullScan {
		t.Errorf("sel=50%%: chose %v, want FullScan", p.Method)
	}
}

// breakEven finds the selectivity where the optimizer switches from index
// scan to full scan, by bisection.
func (f *fixture) breakEven(t *testing.T, model cost.Model) float64 {
	t.Helper()
	lo, hi := 1e-6, 1.0
	if f.choose(t, model, lo).Method != exec.IndexScan {
		return lo
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if f.choose(t, model, mid).Method == exec.IndexScan {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func TestQDTTShiftsBreakEvenRightOnSSD(t *testing.T) {
	// The paper's central claim (Table 2): on SSD the parallel break-even
	// point sits at a much larger selectivity than the non-parallel one.
	f := newFixture(t, "ssd", 200000, 33)
	old := f.breakEven(t, f.dtt)
	new_ := f.breakEven(t, f.qdtt)
	if new_ < 3*old {
		t.Errorf("break-even shifted %.4f%% -> %.4f%%, want >= 3x shift",
			old*100, new_*100)
	}
}

func TestBreakEvenShiftSmallOnHDD(t *testing.T) {
	f := newFixture(t, "hdd", 200000, 33)
	old := f.breakEven(t, f.dtt)
	new_ := f.breakEven(t, f.qdtt)
	if old == 0 {
		t.Fatal("degenerate old break-even")
	}
	if new_ > 8*old {
		t.Errorf("HDD break-even shifted %.4f%% -> %.4f%%; want modest shift",
			old*100, new_*100)
	}
}

func TestBreakEvenSmallerWithMoreRowsPerPage(t *testing.T) {
	// Table 2, reading down a column: more rows per page => smaller
	// break-even selectivity.
	be := func(rpp int) float64 {
		f := newFixture(t, "ssd", 200000, rpp)
		return f.breakEven(t, f.qdtt)
	}
	if b1, b33 := be(1), be(33); b33 >= b1 {
		t.Errorf("break-even rpp=33 (%.3f%%) not below rpp=1 (%.3f%%)", b33*100, b1*100)
	}
	if b33, b500 := be(33), be(500); b500 >= b33 {
		t.Errorf("break-even rpp=500 (%.4f%%) not below rpp=33 (%.4f%%)", b500*100, b33*100)
	}
}

func TestEnumerateSortedAndChooseIsMin(t *testing.T) {
	f := newFixture(t, "ssd", 50000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	in := f.in
	in.Lo, in.Hi = rangeFor(in.Table, 0.01)
	plans := Enumerate(cfg, in)
	if len(plans) != 12 { // {FTS, IS} x {1,2,4,8,16,32}
		t.Fatalf("%d plans, want 12", len(plans))
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].TotalMicros < plans[i-1].TotalMicros {
			t.Fatal("Enumerate not sorted by cost")
		}
	}
	if got := Choose(cfg, in); got != plans[0] {
		t.Error("Choose differs from cheapest enumerated plan")
	}
}

func TestSelectivityClamping(t *testing.T) {
	f := newFixture(t, "ssd", 1000, 33)
	in := f.in
	if got := selectivity(in, 0, 1<<40); got != 1 {
		t.Errorf("overshooting hi: selectivity %f, want 1", got)
	}
	if got := selectivity(in, -100, -1); got != 0 {
		t.Errorf("negative range: selectivity %f, want 0", got)
	}
	if got := selectivity(in, 0, 99); got != 0.1 {
		t.Errorf("10%% range: selectivity %f, want 0.1", got)
	}
}

func TestResidentPagesReduceEstimatedIO(t *testing.T) {
	f := newFixture(t, "ssd", 50000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	in := f.in
	in.Lo, in.Hi = rangeFor(in.Table, 0.9)
	cold := costFullScan(cfg, in, newCosting(in), 1)

	// Warm part of the heap into the pool, then re-cost.
	for p := int64(0); p < 1000; p++ {
		in.Pool.Prefetch(in.Table.File(), p)
	}
	warm := costFullScan(cfg, in, newCosting(in), 1)
	if warm.IOMicros >= cold.IOMicros {
		t.Errorf("warm FTS I/O estimate %.0fus not below cold %.0fus",
			warm.IOMicros, cold.IOMicros)
	}
	if warm.EstPageIO >= cold.EstPageIO {
		t.Errorf("warm page estimate %.0f not below cold %.0f",
			warm.EstPageIO, cold.EstPageIO)
	}
}

func TestNilModelPanics(t *testing.T) {
	f := newFixture(t, "ssd", 1000, 33)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic with nil model")
		}
	}()
	Choose(f.cfg, f.in)
}

func TestPlanSpecRoundTrip(t *testing.T) {
	f := newFixture(t, "ssd", 1000, 33)
	in := f.in
	in.Lo, in.Hi = 10, 99
	p := Plan{Method: exec.IndexScan, Degree: 8}
	spec := p.Spec(in)
	if spec.Method != exec.IndexScan || spec.Degree != 8 ||
		spec.Lo != 10 || spec.Hi != 99 || spec.Table != in.Table || spec.Index != in.Index {
		t.Errorf("Spec round trip lost fields: %+v", spec)
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Method: exec.IndexScan, Degree: 32, TotalMicros: 1000}
	if got := p.String(); got[:6] != "PIS32 " {
		t.Errorf("String() = %q, want PIS32 prefix", got)
	}
	p = Plan{Method: exec.FullScan, Degree: 1}
	if got := p.String(); got[:4] != "FTS " {
		t.Errorf("String() = %q, want FTS prefix", got)
	}
}

// TestSharedScanCandidate covers the attach-path pricing: with parties
// interested in the same table, the enumeration offers a shared plan whose
// I/O is one lap over N, and for an unselective scan the shared plan wins.
func TestSharedScanCandidate(t *testing.T) {
	f := newFixture(t, "ssd", 60000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	in := f.in
	in.Lo, in.Hi = rangeFor(f.in.Table, 1.0)

	for _, parties := range []int{0, 1} {
		cfg.ShareParties = parties
		for _, p := range Enumerate(cfg, in) {
			if p.Shared {
				t.Errorf("ShareParties=%d enumerated a shared plan: %v", parties, p)
			}
		}
	}

	cfg.ShareParties = 8
	plans := Enumerate(cfg, in)
	var shared *Plan
	for i := range plans {
		if plans[i].Shared {
			if shared != nil {
				t.Fatal("more than one shared candidate enumerated")
			}
			shared = &plans[i]
		}
	}
	if shared == nil {
		t.Fatal("ShareParties=8 enumerated no shared plan")
	}
	if shared.Degree != 1 || shared.Method != exec.FullScan {
		t.Errorf("shared plan is %v %d-way, want degree-1 FullScan", shared.Method, shared.Degree)
	}

	// The rider's I/O share is the serial lap split N ways.
	solo := costFullScan(cfg, in, newCosting(in), 1)
	if want := solo.IOMicros / 8; math.Abs(shared.IOMicros-want) > 1e-6 {
		t.Errorf("shared io = %.0fus, want lap/8 = %.0fus", shared.IOMicros, want)
	}

	// Under heavy concurrency the broker's split leaves each query ~one
	// queue-depth credit, forcing private plans serial — the regime the
	// attach path exists for. There the shared lap is never worse than a
	// serial private scan (same CPU, a fraction of the I/O) and the
	// stable enumeration order breaks the CPU-bound tie in its favor.
	cfg.QueueBudget = 1
	best := Choose(cfg, in)
	if !best.Shared {
		t.Errorf("full-table scan with 8 parties chose %v, want the shared plan", best)
	}
	if spec := best.Spec(in); !spec.Shared {
		t.Error("Plan.Spec dropped the Shared flag")
	}

	// The memo must not replay a differently-shared enumeration.
	m := NewMemo()
	cfg.ShareParties = 0
	m.Enumerate(cfg, in)
	cfg.ShareParties = 8
	if p := m.Choose(cfg, in); !p.Shared {
		t.Errorf("memo replayed the unshared enumeration for ShareParties=8: %v", p)
	}
}
