package opt

import (
	"reflect"
	"testing"

	"pioqo/internal/obs"
	"pioqo/internal/sim"
)

// memoInput returns a config+input pair the memo tests share.
func memoFixture(t *testing.T) (Config, Input, *fixture) {
	t.Helper()
	f := newFixture(t, "ssd", 50000, 33)
	cfg := f.cfg
	cfg.Model = f.qdtt
	in := f.in
	in.Lo, in.Hi = rangeFor(in.Table, 0.01)
	return cfg, in, f
}

func TestMemoReplaysIdenticalEnumeration(t *testing.T) {
	cfg, in, _ := memoFixture(t)
	m := NewMemo()

	first := m.Enumerate(cfg, in)
	second := m.Enumerate(cfg, in)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("memo replay diverged:\nfirst  %v\nsecond %v", first, second)
	}
	if !reflect.DeepEqual(first, Enumerate(cfg, in)) {
		t.Fatal("memoized enumeration differs from direct Enumerate")
	}
	if hits, misses := m.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
	if got, want := m.Choose(cfg, in), Choose(cfg, in); got != want {
		t.Fatalf("memo chose %v, direct chose %v", got, want)
	}
}

func TestMemoReturnsDefensiveCopies(t *testing.T) {
	cfg, in, _ := memoFixture(t)
	m := NewMemo()

	first := m.Enumerate(cfg, in)
	first[0].TotalMicros = -1
	first[0].Method = 99

	second := m.Enumerate(cfg, in)
	if second[0].TotalMicros == -1 || second[0].Method == 99 {
		t.Fatal("mutating a returned slice corrupted the cached entry")
	}
}

func TestMemoInvalidatesOnPoolEpoch(t *testing.T) {
	cfg, in, _ := memoFixture(t)
	m := NewMemo()

	m.Enumerate(cfg, in)
	// Any residency change — here a prefetch installing frames — bumps the
	// pool epoch and must force a fresh costing.
	for p := int64(0); p < 200; p++ {
		in.Pool.Prefetch(in.Table.File(), p)
	}
	m.Enumerate(cfg, in)
	if hits, misses := m.Stats(); hits != 0 || misses != 2 {
		t.Fatalf("stats after epoch bump = %d hits, %d misses; want 0, 2", hits, misses)
	}
}

func TestMemoKeySeparatesInputs(t *testing.T) {
	cfg, in, f := memoFixture(t)
	m := NewMemo()
	m.Enumerate(cfg, in)

	// Different predicate range.
	wider := in
	wider.Lo, wider.Hi = rangeFor(in.Table, 0.5)
	m.Enumerate(cfg, wider)

	// Different cost model (the old optimizer).
	oldCfg := cfg
	oldCfg.Model = f.dtt
	m.Enumerate(oldCfg, in)

	// Different enumeration grid.
	gridCfg := cfg
	gridCfg.PrefetchDepths = []int{4, 16}
	m.Enumerate(gridCfg, in)

	if hits, misses := m.Stats(); hits != 0 || misses != 4 {
		t.Fatalf("stats = %d hits, %d misses; want 0 hits, 4 misses", hits, misses)
	}
	if m.Len() != 4 {
		t.Fatalf("memo holds %d entries, want 4", m.Len())
	}

	// Each variant replays from its own entry.
	m.Enumerate(cfg, in)
	m.Enumerate(oldCfg, in)
	if hits, _ := m.Stats(); hits != 2 {
		t.Fatalf("replays after warm-up: %d hits, want 2", hits)
	}

	m.Reset()
	if hits, misses := m.Stats(); hits != 0 || misses != 0 || m.Len() != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestMemoKeysOnLeasedQueueBudget(t *testing.T) {
	// The broker re-plans queries under their admission grant: plans cached
	// under one leased budget must never serve a different lease, and each
	// lease size replays from its own entry.
	cfg, in, _ := memoFixture(t)
	m := NewMemo()

	budgets := []int{0, 2, 8}
	plans := make([]Plan, len(budgets))
	for i, b := range budgets {
		c := cfg
		c.QueueBudget = b
		plans[i] = m.Choose(c, in)
	}
	if hits, misses := m.Stats(); hits != 0 || misses != int64(len(budgets)) {
		t.Fatalf("stats = %d hits, %d misses; want 0, %d", hits, misses, len(budgets))
	}
	for i, b := range budgets {
		c := cfg
		c.QueueBudget = b
		if got := m.Choose(c, in); got != plans[i] {
			t.Errorf("budget %d replay chose %v, first run chose %v", b, got, plans[i])
		}
		if b > 0 && plans[i].Degree > b {
			t.Errorf("budget %d cached a plan at degree %d", b, plans[i].Degree)
		}
	}
	if hits, _ := m.Stats(); hits != int64(len(budgets)) {
		t.Fatalf("replays hit %d entries, want %d", hits, len(budgets))
	}
}

// TestMemoBoundedUnderEpochChurn is the unbounded-growth fix's gate: a long
// install/evict churn — every pool install bumps the epoch, stranding the
// previous epoch's entries forever — must keep the memo's size bounded.
func TestMemoBoundedUnderEpochChurn(t *testing.T) {
	cfg, in, _ := memoFixture(t)
	m := NewMemo()

	pages := in.Table.Pages()
	const churn = 3 * memoMaxEntries
	for i := int64(0); i < churn; i++ {
		// Install churn: while fresh heap pages remain every prefetch bumps
		// the residency epoch, stranding the previous iteration's entry on
		// a dead epoch (the stale-sweep case). Once the heap is resident the
		// epoch freezes and distinct predicates pile up live entries (the
		// full-reset case). Both phases must stay bounded.
		in.Pool.Prefetch(in.Table.File(), i%pages)
		q := in
		q.Lo, q.Hi = i, i+100
		m.Enumerate(cfg, q)
	}
	if n := m.Len(); n > memoMaxEntries {
		t.Fatalf("after churn the memo holds %d entries, cap is %d", n, memoMaxEntries)
	}
	if _, misses := m.Stats(); misses != churn {
		t.Fatalf("every churn lookup should miss; misses = %d, want %d", misses, churn)
	}

	// Bounding must never drop the entry just installed: the final
	// iteration's enumeration still replays.
	q := in
	q.Lo, q.Hi = churn-1, churn-1+100
	m.Enumerate(cfg, q)
	if hits, _ := m.Stats(); hits != 1 {
		t.Fatalf("freshly installed entry evicted by bounding; hits = %d", hits)
	}
}

// TestGridKeyMatchesPerLookupComputation pins the precomputed-grid-key fix:
// a Config carrying GridKey must produce the same memo key as one building
// the string per lookup, for defaulted and explicit grids alike.
func TestGridKeyMatchesPerLookupComputation(t *testing.T) {
	cfg, in, _ := memoFixture(t)
	grids := []Config{
		{},
		{Degrees: []int{1, 4, 16}},
		{PrefetchDepths: []int{2, 8}},
		{Degrees: []int{2, 8}, PrefetchDepths: []int{4, 32}},
	}
	for _, g := range grids {
		lazy := cfg
		lazy.Degrees, lazy.PrefetchDepths = g.Degrees, g.PrefetchDepths
		pre := lazy
		pre.GridKey = GridKey(g.Degrees, g.PrefetchDepths)
		if newMemoKey(pre, in) != newMemoKey(lazy, in) {
			t.Errorf("grid %v/%v: precomputed key diverges from per-lookup key",
				g.Degrees, g.PrefetchDepths)
		}
	}
}

func TestMemoCountsOptimizationsOnReplay(t *testing.T) {
	cfg, in, _ := memoFixture(t)
	reg := obs.NewRegistry(sim.NewEnv(1))
	cfg.Obs = reg
	m := NewMemo()

	first := m.Enumerate(cfg, in)
	m.Enumerate(cfg, in)

	if got := reg.Counter("opt.optimizations").Value(); got != 2 {
		t.Fatalf("opt.optimizations = %d after a miss and a hit, want 2", got)
	}
	if got := reg.Counter("opt.plans_enumerated").Value(); got != int64(2*len(first)) {
		t.Fatalf("opt.plans_enumerated = %d, want %d", got, 2*len(first))
	}
	if reg.Counter("opt.memo_hits").Value() != 1 || reg.Counter("opt.memo_misses").Value() != 1 {
		t.Fatal("memo hit/miss counters not published")
	}
}
